package core

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"crosse/internal/engine"
	"crosse/internal/kb"
	"crosse/internal/rdf"
	"crosse/internal/sesql"
	"crosse/internal/sparql"
	"crosse/internal/sqldb"
	"crosse/internal/sqlexec"
	"crosse/internal/sqlparser"
	"crosse/internal/sqlval"
)

// Enricher is the Semantic Query Module: it evaluates SESQL queries for a
// user by combining the main platform database with the user's contextual
// knowledge base.
type Enricher struct {
	DB       *engine.DB   // main platform (relational databank)
	Platform *kb.Platform // semantic platform (users, beliefs, stored queries)
	Mapping  *Mapping     // relational ↔ ontology resource mapping
	// Activity, when non-nil, records which properties each user's
	// enriched queries engage (feeds the peer-discovery services).
	Activity *Activity

	// cache memoises compiled SESQL and SPARQL queries by text. Nil
	// disables caching (every call re-parses); New installs one by default.
	cache *QueryCache

	// opts configures both executors for every evaluation; see
	// ExecOptions. The zero value is the production configuration.
	opts ExecOptions
}

// New wires an Enricher. A nil mapping gets the default SmartGround one.
// The enricher starts with a default compiled-query cache; use
// SetQueryCache(nil) to disable it.
func New(db *engine.DB, platform *kb.Platform, mapping *Mapping) *Enricher {
	if mapping == nil {
		mapping = NewMapping("")
	}
	return &Enricher{DB: db, Platform: platform, Mapping: mapping, cache: NewQueryCache(0)}
}

// SetQueryCache replaces the enricher's compiled-query cache. A nil cache
// disables compiled-query reuse (useful for benchmarking the parse path).
func (e *Enricher) SetQueryCache(c *QueryCache) { e.cache = c }

// SetExecOptions replaces the enricher's execution options wholesale. Not
// safe to call concurrently with Query.
func (e *Enricher) SetExecOptions(o ExecOptions) { e.opts = o }

// ExecOptions returns the enricher's current execution options.
func (e *Enricher) ExecOptions() ExecOptions { return e.opts }

// SetParallelism caps intra-query parallelism for the enrichment
// pipeline's SQL and SPARQL evaluation: 0 (the default) means GOMAXPROCS,
// 1 forces the serial executors. Large scans, joins and BGP probes then
// fan out across a bounded worker pool; output is identical at every
// setting. Shorthand for mutating ExecOptions.Parallelism; not safe to
// call concurrently with Query.
func (e *Enricher) SetParallelism(n int) { e.opts.Parallelism = n }

// SetPartialResults toggles graceful degradation for unavailable remote
// sources: when on, a scan over a source that is down before producing any
// row (an open FDW circuit) contributes zero rows and the source is named
// in Stats.SkippedSources; when off (the default) such queries fail fast
// with an error matching fdw.ErrSourceDown. Shorthand for mutating
// ExecOptions.PartialResults; not safe to call concurrently with Query.
func (e *Enricher) SetPartialResults(on bool) { e.opts.PartialResults = on }

// QueryCacheStats reports the cache's cumulative hits and misses; zeros when
// caching is disabled.
func (e *Enricher) QueryCacheStats() (hits, misses int) {
	if e.cache == nil {
		return 0, 0
	}
	return e.cache.Stats()
}

// parseSESQL compiles a SESQL text, consulting the cache when enabled.
func (e *Enricher) parseSESQL(text string) (*sesql.Query, error) {
	if e.cache == nil {
		return sesql.Parse(text)
	}
	return e.cache.SESQL(text)
}

// planSQL compiles a SELECT into a physical plan against the main
// platform's catalog, consulting the cache when enabled. Cached plans are
// keyed on the SQL text and the catalog's schema epoch (DDL invalidates,
// data mutations don't), so the enrichment hot path skips column-slot
// resolution and join planning on every repeat query.
func (e *Enricher) planSQL(text string, sel *sqlparser.Select) (*sqlexec.SelectPlan, error) {
	db := e.DB.Catalog()
	opts := e.opts.SQL()
	if e.cache == nil {
		return sqlexec.CompileOpts(db, sel, opts)
	}
	return e.cache.SQLSelect(db, text, opts, func() (*sqlparser.Select, error) { return sel, nil })
}

// planSPARQL compiles a SPARQL text into a physical plan, consulting the
// cache when enabled. A cache hit skips lexing, parsing and planning: the
// returned plan is ready for ID-native execution against any KB view.
func (e *Enricher) planSPARQL(text string) (*sparql.Plan, error) {
	if e.cache == nil {
		q, err := sparql.Parse(text)
		if err != nil {
			return nil, err
		}
		return sparql.Compile(q)
	}
	return e.cache.SPARQLPlan(text)
}

// Stats reports per-stage timings and artifacts of one SESQL evaluation —
// the observable counterpart of the Fig. 6 architecture, used by experiment
// E4 (stage breakdown).
type Stats struct {
	Parse    time.Duration // SQP: tag scanning + parsing
	BaseSQL  time.Duration // relational query on the main platform
	SPARQL   time.Duration // ontology queries on the user's KB
	Join     time.Duration // JoinManager: combine partial results
	FinalSQL time.Duration // final query on the support database

	BaseRows  int
	FinalRows int

	BaseSQLText   string
	SPARQLQueries []string
	FinalSQLText  string

	// SkippedSources names remote sources that were down and skipped
	// under partial-results degradation (empty on complete results).
	SkippedSources []string

	// ParallelFallback records why query stages fell back to the serial
	// pipeline instead of morsel-driven parallel execution — stage-prefixed
	// reasons ("base-sql: driving scan below parallel threshold";
	// "sparql: parallelism=1") joined by "; ", deduplicated. Empty when
	// every executed stage ran parallel.
	ParallelFallback string
}

// addParallelFallback records one stage's serial-fallback reason,
// deduplicating repeats (a single SESQL evaluation can run many SPARQL
// queries that all decline for the same reason).
func (s *Stats) addParallelFallback(stage, reason string) {
	if reason == "" {
		return
	}
	entry := stage + ": " + reason
	for _, have := range strings.Split(s.ParallelFallback, "; ") {
		if have == entry {
			return
		}
	}
	if s.ParallelFallback != "" {
		s.ParallelFallback += "; "
	}
	s.ParallelFallback += entry
}

// Total returns the end-to-end latency.
func (s *Stats) Total() time.Duration {
	return s.Parse + s.BaseSQL + s.SPARQL + s.Join + s.FinalSQL
}

// Query evaluates a SESQL query in the user's context.
func (e *Enricher) Query(user, text string) (*sqlexec.Result, error) {
	res, _, err := e.QueryStats(user, text)
	return res, err
}

// QueryStats evaluates a SESQL query and reports per-stage statistics.
func (e *Enricher) QueryStats(user, text string) (*sqlexec.Result, *Stats, error) {
	return e.QueryStatsContext(nil, user, text)
}

// QueryStatsContext is QueryStats bounded by ctx: scans over remote
// (context-aware) sources honour the context's deadline and cancellation,
// so a stalled peer cannot hang the query past its deadline. A nil ctx
// behaves like QueryStats.
func (e *Enricher) QueryStatsContext(ctx context.Context, user, text string) (*sqlexec.Result, *Stats, error) {
	st := &Stats{}

	t0 := time.Now()
	q, err := e.parseSESQL(text)
	st.Parse = time.Since(t0)
	if err != nil {
		return nil, st, err
	}

	view, err := e.Platform.View(user)
	if err != nil {
		return nil, st, err
	}

	if e.Activity != nil && len(q.Enrichments) > 0 {
		props := make([]string, 0, len(q.Enrichments))
		for _, en := range q.Enrichments {
			props = append(props, e.Mapping.PropertyIRI(en.Property).Value)
		}
		e.Activity.Record(user, props)
	}

	// Split enrichments into WHERE-affecting and schema-affecting.
	var whereEnr, schemaEnr []sesql.Enrichment
	for _, en := range q.Enrichments {
		switch en.Kind {
		case sesql.ReplaceConstant, sesql.ReplaceVariable:
			whereEnr = append(whereEnr, en)
		default:
			schemaEnr = append(schemaEnr, en)
		}
	}

	// Fast path: plain SQL through the compiled-plan cache.
	if len(q.Enrichments) == 0 {
		t0 = time.Now()
		plan, err := e.planSQL(q.SQL, q.Select)
		if err != nil {
			st.BaseSQL = time.Since(t0)
			st.BaseSQLText = q.SQL
			return nil, st, err
		}
		res, err := plan.RunContext(ctx)
		st.BaseSQL = time.Since(t0)
		st.BaseSQLText = q.SQL
		if res != nil {
			st.BaseRows, st.FinalRows = len(res.Rows), len(res.Rows)
			st.SkippedSources = res.SkippedSources
			st.addParallelFallback("base-sql", res.ParallelFallback)
		}
		return res, st, err
	}

	if len(whereEnr) > 0 {
		if q.Select.Distinct || len(q.Select.GroupBy) > 0 || q.Select.Having != nil {
			return nil, st, fmt.Errorf("core: WHERE enrichment requires a plain SELECT (no DISTINCT/GROUP BY)")
		}
	}

	// --- Build and run the base SQL query on the main platform ---
	base, hidden, err := e.buildBaseQuery(q, whereEnr)
	if err != nil {
		return nil, st, err
	}
	deferOrder := len(whereEnr) > 0
	if deferOrder {
		base.OrderBy, base.Limit, base.Offset = nil, nil, nil
	}
	st.BaseSQLText = sqlparser.SelectSQL(base)

	// The base query streams straight into the JoinManager's workset: no
	// intermediate Result, rows land once in a workset-owned arena. The
	// rendered base SQL keys the plan cache (the rewrite is deterministic
	// per SESQL text, so repeats hit).
	t0 = time.Now()
	plan, err := e.planSQL(st.BaseSQLText, base)
	if err != nil {
		st.BaseSQL = time.Since(t0)
		return nil, st, fmt.Errorf("core: base query: %w", err)
	}
	work := &workset{headers: plan.Columns()}
	arena := sqlval.NewRowArena(len(work.headers))
	info, err := plan.StreamInfoContext(ctx, func(row []sqlval.Value) bool {
		work.rows = append(work.rows, arena.Copy(row))
		return true
	})
	st.BaseSQL = time.Since(t0)
	if err != nil {
		return nil, st, fmt.Errorf("core: base query: %w", err)
	}
	skipped := info.SkippedSources
	st.SkippedSources = skipped
	st.addParallelFallback("base-sql", info.ParallelFallback)
	st.BaseRows = len(work.rows)
	visible := len(work.headers) - len(hidden.order)

	// --- WHERE enrichments (JoinManager filtering) ---
	for _, en := range whereEnr {
		if err := e.applyWhereEnrichment(q, en, hidden, work, view, user, st); err != nil {
			return nil, st, err
		}
	}

	// --- Schema enrichments ---
	for _, en := range schemaEnr {
		if err := e.applySchemaEnrichment(q, en, work, view, user, visible, st); err != nil {
			return nil, st, err
		}
		visible = len(work.headers) - len(hidden.order) // new columns are visible
	}

	// Fast path: when nothing was deferred to the final query (no ORDER
	// BY / LIMIT / OFFSET left to re-apply), Fig. 6's final SQL is a pure
	// projection of the visible columns — answer it straight from the
	// JoinManager's buffer instead of materialising a temporary support
	// database and re-scanning it. FinalSQLText stays empty to record that
	// no final query ran.
	if !deferOrder || (len(q.Select.OrderBy) == 0 && q.Select.Limit == nil && q.Select.Offset == nil) {
		t0 = time.Now()
		visibleN := len(work.headers) - len(hidden.order)
		res := &sqlexec.Result{Columns: append([]string(nil), work.headers[:visibleN]...)}
		if visibleN == len(work.headers) {
			res.Rows = work.rows
		} else {
			rows := make([][]sqlval.Value, len(work.rows))
			for i, r := range work.rows {
				rows[i] = r[:visibleN]
			}
			res.Rows = rows
		}
		st.Join += time.Since(t0)
		st.FinalRows = len(res.Rows)
		res.SkippedSources = skipped
		return res, st, nil
	}

	// --- Materialise into the temporary support database, then run the
	// final SQL query (Fig. 6's last step) ---
	t0 = time.Now()
	support := engine.Open()
	tempCols, err := materialize(support, "sesql_result", work)
	if err != nil {
		return nil, st, err
	}
	st.Join += time.Since(t0)

	finalSQL := buildFinalSQL(tempCols, work.headers, len(work.headers)-len(hidden.order), q.Select, deferOrder)
	st.FinalSQLText = finalSQL

	t0 = time.Now()
	finalRes, err := support.Query(finalSQL)
	st.FinalSQL = time.Since(t0)
	if err != nil {
		return nil, st, fmt.Errorf("core: final query: %w", err)
	}
	// Restore the exact output headers (quoted aliases survive, but make
	// doubly sure derived names match the visible headers).
	finalRes.Columns = append([]string(nil), work.headers[:len(work.headers)-len(hidden.order)]...)
	st.FinalRows = len(finalRes.Rows)
	finalRes.SkippedSources = skipped
	st.addParallelFallback("final-sql", finalRes.ParallelFallback)
	return finalRes, st, nil
}

// workset is the JoinManager's in-flight partial result.
type workset struct {
	headers []string
	rows    [][]sqlval.Value
}

func (w *workset) colIndex(name string) int {
	for i, h := range w.headers {
		if h == name {
			return i
		}
	}
	return -1
}

// hiddenCols tracks the extra projections added to the base query so that
// tagged WHERE conditions can be re-evaluated over materialised rows.
type hiddenCols struct {
	alias map[string]string // ColRef.SQL() → hidden column alias
	order []string          // aliases in order of addition
}

// buildBaseQuery clones the parsed SELECT, neutralises tagged conditions
// targeted by WHERE enrichments (they become TRUE — the enrichment applies
// them later against the ontology), and appends hidden projections for the
// columns those conditions reference.
func (e *Enricher) buildBaseQuery(q *sesql.Query, whereEnr []sesql.Enrichment) (*sqlparser.Select, *hiddenCols, error) {
	sel := *q.Select // shallow copy; Items/Where replaced below
	sel.Items = append([]sqlparser.SelectItem(nil), q.Select.Items...)

	hidden := &hiddenCols{alias: map[string]string{}}
	trueLit := &sqlparser.Literal{Val: sqlval.NewBool(true)}

	for _, en := range whereEnr {
		tag := q.Conds[en.CondID]
		where, n := sesql.ReplaceSubtree(sel.Where, tag.Expr, trueLit)
		if n == 0 {
			return nil, nil, fmt.Errorf("core: condition %s not found in WHERE", en.CondID)
		}
		sel.Where = where

		var refs []*sqlparser.ColRef
		collectColRefs(tag.Expr, &refs)
		if en.Kind == sesql.ReplaceVariable {
			attr := parseAttrRef(en.Attr)
			refs = append(refs, attr)
		}
		// For ReplaceConstant the "attribute" is the non-relational
		// constant (e.g. HazardousWaste) — it has no database column, so
		// it must not become a hidden projection.
		constSQL := ""
		if en.Kind == sesql.ReplaceConstant {
			constSQL = parseAttrRef(en.Attr).SQL()
		}
		for _, cr := range refs {
			key := cr.SQL()
			if key == constSQL {
				continue
			}
			if _, ok := hidden.alias[key]; ok {
				continue
			}
			alias := fmt.Sprintf("__h%d", len(hidden.order)+1)
			hidden.alias[key] = alias
			hidden.order = append(hidden.order, alias)
			sel.Items = append(sel.Items, sqlparser.SelectItem{Expr: cr, Alias: alias})
		}
	}
	return &sel, hidden, nil
}

// parseAttrRef parses an enrichment attr argument ("elem_name" or
// "Elecond2.elem_name") into a column reference.
func parseAttrRef(attr string) *sqlparser.ColRef {
	if i := strings.IndexByte(attr, '.'); i >= 0 {
		return &sqlparser.ColRef{Qualifier: attr[:i], Name: attr[i+1:]}
	}
	return &sqlparser.ColRef{Name: attr}
}

func collectColRefs(e sqlparser.Expr, out *[]*sqlparser.ColRef) {
	switch ex := e.(type) {
	case *sqlparser.ColRef:
		*out = append(*out, ex)
	case *sqlparser.BinExpr:
		collectColRefs(ex.L, out)
		collectColRefs(ex.R, out)
	case *sqlparser.UnaryExpr:
		collectColRefs(ex.E, out)
	case *sqlparser.IsNull:
		collectColRefs(ex.E, out)
	case *sqlparser.InList:
		collectColRefs(ex.E, out)
		for _, le := range ex.List {
			collectColRefs(le, out)
		}
	case *sqlparser.Between:
		collectColRefs(ex.E, out)
		collectColRefs(ex.Lo, out)
		collectColRefs(ex.Hi, out)
	case *sqlparser.FuncCall:
		for _, a := range ex.Args {
			collectColRefs(a, out)
		}
	case *sqlparser.CaseExpr:
		if ex.Operand != nil {
			collectColRefs(ex.Operand, out)
		}
		for _, w := range ex.Whens {
			collectColRefs(w.Cond, out)
			collectColRefs(w.Then, out)
		}
		if ex.Else != nil {
			collectColRefs(ex.Else, out)
		}
	}
}

// --- WHERE enrichments ---

// applyWhereEnrichment re-evaluates the tagged condition over every base
// row with the constant (ReplaceConstant) or the attribute's value
// (ReplaceVariable) replaced by the values the ontology yields; a row
// survives when some replacement satisfies the condition (the paper's
// "treat the list as if it was a relational attribute").
func (e *Enricher) applyWhereEnrichment(q *sesql.Query, en sesql.Enrichment, hidden *hiddenCols, work *workset, view rdf.Graph, user string, st *Stats) error {
	tag := q.Conds[en.CondID]

	// Rewrite the condition: every referenced column → its hidden alias;
	// for ReplaceConstant the constant → pseudo-variable __v; for
	// ReplaceVariable the attribute → __v.
	cond := tag.Expr
	var refs []*sqlparser.ColRef
	collectColRefs(tag.Expr, &refs)
	pseudo := &sqlparser.ColRef{Name: "__v"}

	switch en.Kind {
	case sesql.ReplaceConstant:
		constRef := parseAttrRef(en.Attr)
		rewritten, n := sesql.ReplaceSubtree(cond, constRef, pseudo)
		if n == 0 {
			return fmt.Errorf("core: constant %s does not appear in condition %s", en.Attr, en.CondID)
		}
		cond = rewritten
	case sesql.ReplaceVariable:
		attrRef := parseAttrRef(en.Attr)
		rewritten, n := sesql.ReplaceSubtree(cond, attrRef, pseudo)
		if n == 0 {
			return fmt.Errorf("core: attribute %s does not appear in condition %s", en.Attr, en.CondID)
		}
		cond = rewritten
	}
	for _, cr := range refs {
		alias, ok := hidden.alias[cr.SQL()]
		if !ok {
			continue // already rewritten to __v
		}
		cond, _ = sesql.ReplaceSubtree(cond, cr, &sqlparser.ColRef{Name: alias})
	}

	scopeCols := make([]sqlexec.ScopeCol, len(work.headers)+1)
	for i, h := range work.headers {
		scopeCols[i] = sqlexec.ScopeCol{Name: h}
	}
	scopeCols[len(work.headers)] = sqlexec.ScopeCol{Name: "__v"}

	switch en.Kind {
	case sesql.ReplaceConstant:
		values, err := e.replacementValues(en, user, view, st)
		if err != nil {
			return err
		}
		return existsFilter(work, scopeCols, cond, func(row []sqlval.Value, try func(sqlval.Value) (bool, error)) (bool, error) {
			for _, v := range values {
				ok, err := try(v)
				if err != nil || ok {
					return ok, err
				}
			}
			return false, nil
		}, st)

	case sesql.ReplaceVariable:
		pairs, err := e.propertyPairs(en, user, view, st)
		if err != nil {
			return err
		}
		attrIdx := work.colIndex(hidden.alias[parseAttrRef(en.Attr).SQL()])
		if attrIdx < 0 {
			return fmt.Errorf("core: internal: hidden column for %s missing", en.Attr)
		}
		return existsFilter(work, scopeCols, cond, func(row []sqlval.Value, try func(sqlval.Value) (bool, error)) (bool, error) {
			for _, v := range pairs[valueKey(row[attrIdx])] {
				ok, err := try(v)
				if err != nil || ok {
					return ok, err
				}
			}
			return false, nil
		}, st)
	}
	return nil
}

// existsFilter keeps rows for which the candidate generator finds a value
// satisfying the rewritten condition. The condition compiles once to a
// slot-resolved predicate; per candidate value the cost is one evaluation
// over the scratch row, not an AST walk with per-row name resolution.
func existsFilter(work *workset, scopeCols []sqlexec.ScopeCol, cond sqlparser.Expr,
	gen func(row []sqlval.Value, try func(sqlval.Value) (bool, error)) (bool, error), st *Stats) error {
	t0 := time.Now()
	defer func() { st.Join += time.Since(t0) }()

	pred, err := sqlexec.CompilePredicate(scopeCols, cond)
	if err != nil {
		return fmt.Errorf("core: WHERE enrichment condition: %w", err)
	}
	scratch := make([]sqlval.Value, len(work.headers)+1)
	var kept [][]sqlval.Value
	for _, row := range work.rows {
		copy(scratch, row)
		try := func(v sqlval.Value) (bool, error) {
			scratch[len(work.headers)] = v
			tri, err := pred.EvalBool(scratch)
			if err != nil {
				// Type mismatches against heterogeneous ontology values
				// behave like SQL UNKNOWN rather than aborting the query.
				return false, nil
			}
			return tri == sqlval.True, nil
		}
		ok, err := gen(row, try)
		if err != nil {
			return err
		}
		if ok {
			kept = append(kept, row)
		}
	}
	work.rows = kept
	return nil
}

// --- schema enrichments ---

func (e *Enricher) applySchemaEnrichment(q *sesql.Query, en sesql.Enrichment, work *workset, view rdf.Graph, user string, visible int, st *Stats) error {
	attrIdx, err := resolveAttr(q.Select, work.headers[:visible], en.Attr)
	if err != nil {
		return err
	}
	// The ontology side of the join: what the column's values map to.
	table := attrTable(q.Select, en.Attr)
	column := parseAttrRef(en.Attr).Name

	switch en.Kind {
	case sesql.SchemaExtension, sesql.SchemaReplacement:
		pairs, err := e.propertyPairs(en, user, view, st)
		if err != nil {
			return err
		}
		t0 := time.Now()
		newCol := uniqueName(shortName(en.Property), work.headers)
		replace := en.Kind == sesql.SchemaReplacement
		rows := make([][]sqlval.Value, 0, len(work.rows))
		arena := extendArena(work.rows, replace)
		// Column values repeat across rows; memoise the value→term→key
		// mapping so the per-row cost is one comparable-map probe instead
		// of an IRI string build.
		memo := make(map[sqlval.Value][]sqlval.Value)
		for _, row := range work.rows {
			objs, ok := memo[row[attrIdx]]
			if !ok {
				objs = pairs[valueKeyMapped(e.Mapping, table, column, row[attrIdx])]
				memo[row[attrIdx]] = objs
			}
			if len(objs) == 0 {
				rows = append(rows, extendRow(arena, row, attrIdx, sqlval.Null, replace, visible))
				continue
			}
			for _, o := range objs {
				rows = append(rows, extendRow(arena, row, attrIdx, o, replace, visible))
			}
		}
		work.rows = rows
		if replace {
			work.headers[attrIdx] = newCol
		} else {
			work.headers = insertHeader(work.headers, visible, newCol)
		}
		st.Join += time.Since(t0)
		return nil

	case sesql.BoolSchemaExtension, sesql.BoolSchemaReplacement:
		members, err := e.conceptMembers(en, user, view, st)
		if err != nil {
			return err
		}
		t0 := time.Now()
		newCol := uniqueName(shortName(en.Property), work.headers)
		replace := en.Kind == sesql.BoolSchemaReplacement
		rows := make([][]sqlval.Value, 0, len(work.rows))
		arena := extendArena(work.rows, replace)
		memo := make(map[sqlval.Value]bool)
		for _, row := range work.rows {
			isMember, ok := memo[row[attrIdx]]
			if !ok {
				_, isMember = members[valueKeyMapped(e.Mapping, table, column, row[attrIdx])]
				memo[row[attrIdx]] = isMember
			}
			rows = append(rows, extendRow(arena, row, attrIdx, sqlval.NewBool(isMember), replace, visible))
		}
		work.rows = rows
		if replace {
			work.headers[attrIdx] = newCol
		} else {
			work.headers = insertHeader(work.headers, visible, newCol)
		}
		st.Join += time.Since(t0)
		return nil
	}
	return fmt.Errorf("core: unexpected schema enrichment %v", en.Kind)
}

// extendArena returns a row arena sized for the enrichment's output rows
// (same width on replacement, one wider on extension).
func extendArena(rows [][]sqlval.Value, replace bool) *sqlval.RowArena {
	w := 0
	if len(rows) > 0 {
		w = len(rows[0])
		if !replace {
			w++
		}
	}
	return sqlval.NewRowArena(w)
}

// extendRow either replaces column attrIdx with v or inserts v as a new
// column just before position visible (i.e. after the visible columns,
// before any hidden ones). Output rows come from the arena, so the
// per-input-row join loop does not allocate.
func extendRow(a *sqlval.RowArena, row []sqlval.Value, attrIdx int, v sqlval.Value, replace bool, visible int) []sqlval.Value {
	if replace {
		out := a.Copy(row)
		out[attrIdx] = v
		return out
	}
	out := a.Next()
	copy(out, row[:visible])
	out[visible] = v
	copy(out[visible+1:], row[visible:])
	return out
}

func insertHeader(headers []string, visible int, name string) []string {
	out := make([]string, 0, len(headers)+1)
	out = append(out, headers[:visible]...)
	out = append(out, name)
	out = append(out, headers[visible:]...)
	return out
}

// --- ontology access (the SQM's constructed SPARQL queries) ---

// propertyPairs returns subject→objects for the enrichment property, via a
// constructed SPARQL query or a stored one (Sec. IV-A.5: "prop refers to
// either a property from the contextual ontology, or the identifier of a
// previously stored SPARQL query").
func (e *Enricher) propertyPairs(en sesql.Enrichment, user string, view rdf.Graph, st *Stats) (map[string][]sqlval.Value, error) {
	text := ""
	minVarsErr := ""
	if sq, ok := e.Platform.LookupQuery(user, en.Property); ok {
		text = sq.Text
		minVarsErr = fmt.Sprintf("stored query %q must project (subject, object) for %s", en.Property, en.Kind)
	} else {
		prop := e.Mapping.PropertyIRI(en.Property)
		text = fmt.Sprintf("SELECT ?s ?o WHERE { ?s <%s> ?o }", prop.Value)
	}
	pairs := map[string][]sqlval.Value{}
	err := e.streamSPARQL(view, text, st, 2, minVarsErr, func(sol sparql.Solution) bool {
		s, okS := sol.Term(0)
		o, okO := sol.Term(1)
		if !okS || !okO {
			return true
		}
		key := valueKey(e.Mapping.FromTerm(s))
		pairs[key] = append(pairs[key], e.Mapping.FromTerm(o))
		return true
	})
	if err != nil {
		return nil, err
	}
	return pairs, nil
}

// conceptMembers returns the set of values related to the concept through
// the property (for the boolean enrichments).
func (e *Enricher) conceptMembers(en sesql.Enrichment, user string, view rdf.Graph, st *Stats) (map[string]struct{}, error) {
	prop := e.Mapping.PropertyIRI(en.Property)
	concepts := e.Mapping.ConceptTerms(en.Concept)
	var parts []string
	for _, c := range concepts {
		parts = append(parts, fmt.Sprintf("{ ?s <%s> %s }", prop.Value, c.String()))
	}
	text := "SELECT DISTINCT ?s WHERE { " + strings.Join(parts, " UNION ") + " }"
	members := map[string]struct{}{}
	err := e.streamSPARQL(view, text, st, 1, "", func(sol sparql.Solution) bool {
		if s, ok := sol.Term(0); ok {
			members[valueKey(e.Mapping.FromTerm(s))] = struct{}{}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return members, nil
}

// replacementValues returns the candidate values for a ReplaceConstant
// enrichment: the results of a stored query, or the objects of triples
// whose subject is the constant.
func (e *Enricher) replacementValues(en sesql.Enrichment, user string, view rdf.Graph, st *Stats) ([]sqlval.Value, error) {
	text := ""
	minVarsErr := ""
	if sq, ok := e.Platform.LookupQuery(user, en.Property); ok {
		text = sq.Text
		minVarsErr = fmt.Sprintf("stored query %q projects no variables", en.Property)
	} else {
		prop := e.Mapping.PropertyIRI(en.Property)
		var parts []string
		for _, c := range e.Mapping.ConceptTerms(en.Attr) {
			parts = append(parts, fmt.Sprintf("{ %s <%s> ?o }", c.String(), prop.Value))
		}
		text = "SELECT ?o WHERE { " + strings.Join(parts, " UNION ") + " }"
	}
	var out []sqlval.Value
	err := e.streamSPARQL(view, text, st, 1, minVarsErr, func(sol sparql.Solution) bool {
		if t, ok := sol.Term(0); ok {
			out = append(out, e.Mapping.FromTerm(t))
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// streamSPARQL compiles (through the plan cache) and streams a SPARQL query
// over the user's KB view: solutions reach fn as ID rows decoded on access,
// with no per-solution Binding map materialised. minVars guards stored
// queries that must project a minimum number of variables; minVarsErr is
// the error reported when they don't.
func (e *Enricher) streamSPARQL(view rdf.Graph, text string, st *Stats, minVars int, minVarsErr string, fn func(sparql.Solution) bool) error {
	st.SPARQLQueries = append(st.SPARQLQueries, text)
	t0 := time.Now()
	defer func() { st.SPARQL += time.Since(t0) }()
	p, err := e.planSPARQL(text)
	if err != nil {
		return fmt.Errorf("core: SPARQL: %w", err)
	}
	if p.NumVars() < minVars {
		return fmt.Errorf("core: %s", minVarsErr)
	}
	info, err := p.StreamInfoOpts(view, e.opts.SPARQL(), fn)
	if err != nil {
		return fmt.Errorf("core: SPARQL: %w", err)
	}
	st.addParallelFallback("sparql", info.ParallelFallback)
	return nil
}

// --- helpers ---

// valueKey encodes a SQL value for hash joining ontology results with
// relational values (numeric types fold together). It runs once per base
// row per enrichment, so it builds the key directly instead of going
// through fmt.
func valueKey(v sqlval.Value) string {
	t := v.Type()
	if t == sqlval.TypeFloat {
		t = sqlval.TypeInt
	}
	s := v.String()
	var b strings.Builder
	b.Grow(len(s) + 4)
	b.WriteString(strconv.Itoa(int(t)))
	b.WriteByte('|')
	b.WriteString(s)
	return b.String()
}

// valueKeyMapped routes the relational value through the resource mapping
// and back, so a column mapped to IRIs joins with IRI-derived values.
func valueKeyMapped(m *Mapping, table, column string, v sqlval.Value) string {
	if v.IsNull() {
		return "null"
	}
	return valueKey(m.FromTerm(m.ToTerm(table, column, v)))
}

// resolveAttr finds the result column an enrichment attr argument denotes:
// an alias, a projected column name, or a qualified column whose projection
// matches.
func resolveAttr(sel *sqlparser.Select, headers []string, attr string) (int, error) {
	ref := parseAttrRef(attr)
	var matches []int
	hasStar := false
	for _, it := range sel.Items {
		if it.Star {
			hasStar = true
		}
	}
	// Item positions align with header positions only when no star was
	// expanded; otherwise match on headers alone below.
	if !hasStar {
		for i, it := range sel.Items {
			if i >= len(headers) {
				break
			}
			if it.Alias != "" && strings.EqualFold(it.Alias, attr) {
				matches = append(matches, i)
				continue
			}
			if cr, ok := it.Expr.(*sqlparser.ColRef); ok {
				if !strings.EqualFold(cr.Name, ref.Name) {
					continue
				}
				if ref.Qualifier != "" && !strings.EqualFold(cr.Qualifier, ref.Qualifier) {
					continue
				}
				matches = append(matches, i)
			}
		}
	}
	// Stars were expanded at execution time; fall back to header names.
	if len(matches) == 0 {
		for i, h := range headers {
			if strings.EqualFold(h, ref.Name) {
				matches = append(matches, i)
			}
		}
	}
	switch len(matches) {
	case 1:
		return matches[0], nil
	case 0:
		return 0, fmt.Errorf("core: enrichment attribute %q is not in the SELECT clause", attr)
	default:
		return 0, fmt.Errorf("core: enrichment attribute %q is ambiguous", attr)
	}
}

// attrTable resolves which FROM table an attr qualifier denotes, for the
// resource mapping ("Elecond2" → elem_contained).
func attrTable(sel *sqlparser.Select, attr string) string {
	ref := parseAttrRef(attr)
	if ref.Qualifier == "" {
		if len(sel.From) == 1 && len(sel.From[0].Joins) == 0 {
			return sel.From[0].Table
		}
		return ""
	}
	for _, tr := range sel.From {
		if strings.EqualFold(tr.Alias, ref.Qualifier) || strings.EqualFold(tr.Table, ref.Qualifier) {
			return tr.Table
		}
		for _, j := range tr.Joins {
			if strings.EqualFold(j.Alias, ref.Qualifier) || strings.EqualFold(j.Table, ref.Qualifier) {
				return j.Table
			}
		}
	}
	return ""
}

func shortName(prop string) string {
	if i := strings.LastIndexAny(prop, "#/"); i >= 0 && i+1 < len(prop) {
		return prop[i+1:]
	}
	return prop
}

func uniqueName(base string, taken []string) string {
	name := base
	for n := 2; ; n++ {
		clash := false
		for _, t := range taken {
			if strings.EqualFold(t, name) {
				clash = true
				break
			}
		}
		if !clash {
			return name
		}
		name = fmt.Sprintf("%s_%d", base, n)
	}
}

// materialize writes the workset into the support database as a temp table
// and returns the (sanitised, unique) physical column names in order.
func materialize(support *engine.DB, table string, work *workset) ([]string, error) {
	cols := make([]string, len(work.headers))
	used := map[string]bool{}
	for i, h := range work.headers {
		name := sanitizeIdent(h)
		if name == "" {
			name = fmt.Sprintf("col%d", i+1)
		}
		base := name
		for n := 2; used[strings.ToLower(name)]; n++ {
			name = fmt.Sprintf("%s_%d", base, n)
		}
		used[strings.ToLower(name)] = true
		cols[i] = name
	}
	schema := make(sqldb.Schema, len(cols))
	for i, c := range cols {
		schema[i] = sqldb.Column{Name: c, Type: inferType(work.rows, i)}
	}
	tab, err := support.Catalog().CreateTable(table, schema, false)
	if err != nil {
		return nil, err
	}
	for _, row := range work.rows {
		if err := tab.Insert(row); err != nil {
			return nil, fmt.Errorf("core: materialising %s: %w", table, err)
		}
	}
	return cols, nil
}

func sanitizeIdent(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if b.Len() == 0 {
				b.WriteByte('c')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return strings.Trim(b.String(), "_")
}

// inferType picks the narrowest type covering a column's values.
func inferType(rows [][]sqlval.Value, col int) sqlval.Type {
	sawInt, sawFloat, sawBool, sawString := false, false, false, false
	for _, r := range rows {
		switch r[col].Type() {
		case sqlval.TypeInt:
			sawInt = true
		case sqlval.TypeFloat:
			sawFloat = true
		case sqlval.TypeBool:
			sawBool = true
		case sqlval.TypeString:
			sawString = true
		}
	}
	switch {
	case sawString:
		return sqlval.TypeString
	case sawFloat && !sawBool:
		return sqlval.TypeFloat
	case sawInt && !sawBool:
		return sqlval.TypeInt
	case sawBool && !sawInt && !sawFloat:
		return sqlval.TypeBool
	case sawBool || sawInt || sawFloat:
		return sqlval.TypeString // mixed bool/numeric: fall back to text
	default:
		return sqlval.TypeString // all NULL
	}
}

// buildFinalSQL renders the Fig. 6 final query: project the visible columns
// (dropping hidden ones) from the temp table, re-applying any deferred
// ORDER BY / LIMIT / OFFSET.
func buildFinalSQL(tempCols, headers []string, visible int, orig *sqlparser.Select, deferOrder bool) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i := 0; i < visible; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%q", tempCols[i])
		if tempCols[i] != headers[i] {
			fmt.Fprintf(&b, " AS %q", strings.ReplaceAll(headers[i], `"`, `'`))
		}
	}
	b.WriteString(" FROM sesql_result")
	if deferOrder {
		if len(orig.OrderBy) > 0 {
			b.WriteString(" ORDER BY ")
			for i, o := range orig.OrderBy {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(o.Expr.SQL())
				if o.Desc {
					b.WriteString(" DESC")
				}
			}
		}
		if orig.Limit != nil {
			b.WriteString(" LIMIT " + orig.Limit.SQL())
		}
		if orig.Offset != nil {
			b.WriteString(" OFFSET " + orig.Offset.SQL())
		}
	}
	return b.String()
}
