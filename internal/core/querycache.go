package core

import (
	"sync"
	"sync/atomic"

	"crosse/internal/sesql"
	"crosse/internal/sparql"
	"crosse/internal/sqldb"
	"crosse/internal/sqlexec"
	"crosse/internal/sqlparser"
)

// QueryCache memoises compiled SESQL queries and compiled SPARQL *physical
// plans* keyed on their exact source text, so repeated enrichment queries —
// the paper's E4/E5/E6 workloads re-issue the same handful of SESQL texts,
// and every schema enrichment re-constructs the same SPARQL property query —
// skip lexing, parsing AND planning entirely. A cached sparql.Plan carries
// the variable-slot table, the join-ready pattern forms and the precompiled
// FILTER regexes (see internal/sparql), so a cache hit goes straight to
// ID-native execution.
//
// Invalidation rule: the cache key is the query text and nothing else.
// Compiled plans hold structure only — slot tables, constant tables,
// compiled regexes — never graph data or dictionary IDs (constants resolve
// to IDs per evaluation, against the target graph's dictionary), so KB
// mutations (inserts, imports, retractions) never invalidate cached entries:
// the same plan simply evaluates against the updated graph, and the same
// plan is valid against every user's view simultaneously. Only successful
// compilations are cached; failing texts are re-parsed on each attempt.
//
// The cache is safe for concurrent use. Cached objects are shared across
// callers: parsed SESQL ASTs are treated as immutable (the enricher
// shallow-copies the SELECT before rewriting it), and sparql.Plan is
// immutable by construction — all per-evaluation state lives in the
// executor — which makes sharing sound.
type QueryCache struct {
	mu     sync.RWMutex
	sesql  map[string]*sesql.Query
	sparql map[string]*sparql.Plan
	sql    map[sqlKey]*sqlPlanEntry
	max    int

	// Counters are atomic so the hit path stays contention-free: hits
	// happen on every request under load and must not take the write lock.
	hits, misses atomic.Int64
}

// sqlKey identifies one cached SQL physical plan: the text alone is not
// enough, because plans bind to a specific catalog — two databases
// issuing the same text must not evict each other's entries.
type sqlKey struct {
	db   *sqldb.Database
	text string
}

// sqlPlanEntry is one cached SQL physical plan. Unlike SPARQL plans — pure
// structure, valid against any graph — a compiled SelectPlan binds to the
// catalog's relations and index choices, so the entry records the schema
// epoch at compile time: any DDL (CREATE/DROP TABLE, CREATE INDEX,
// foreign registration) bumps the epoch and the stale plan recompiles on
// next lookup. Data mutations never invalidate entries.
type sqlPlanEntry struct {
	plan  *sqlexec.SelectPlan
	epoch uint64
	opts  sqlexec.Options
}

// DefaultQueryCacheSize bounds each of the three cache maps (SESQL,
// SPARQL, SQL plans). Real workloads use a small set of distinct query
// texts; the bound only guards against adversarial streams of unique
// queries.
const DefaultQueryCacheSize = 4096

// NewQueryCache returns an empty cache holding at most max entries per
// language (SESQL, SPARQL and SQL plans are bounded independently);
// max <= 0 uses DefaultQueryCacheSize.
func NewQueryCache(max int) *QueryCache {
	if max <= 0 {
		max = DefaultQueryCacheSize
	}
	return &QueryCache{
		sesql:  make(map[string]*sesql.Query),
		sparql: make(map[string]*sparql.Plan),
		sql:    make(map[sqlKey]*sqlPlanEntry),
		max:    max,
	}
}

// SQLSelect returns the compiled physical plan of a SELECT against db,
// compiling on first sight and whenever the catalog's schema epoch has
// moved since the plan was compiled, or the requested execution options
// differ from the cached plan's (plans bind their options at compile
// time). The text is the cache key; parse supplies the AST on a miss (so
// callers that already hold a parsed SELECT don't re-parse). A hit skips
// parsing, column-slot resolution and join planning entirely — the plan
// is ready to Run or Stream.
func (c *QueryCache) SQLSelect(db *sqldb.Database, text string, opts sqlexec.Options, parse func() (*sqlparser.Select, error)) (*sqlexec.SelectPlan, error) {
	epoch := db.SchemaEpoch()
	key := sqlKey{db: db, text: text}
	c.mu.RLock()
	e, ok := c.sql[key]
	c.mu.RUnlock()
	if ok && e.epoch == epoch && e.opts == opts {
		c.hits.Add(1)
		return e.plan, nil
	}
	sel, err := parse()
	if err != nil {
		return nil, err
	}
	plan, err := sqlexec.CompileOpts(db, sel, opts)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if len(c.sql) >= c.max {
		c.sql = make(map[sqlKey]*sqlPlanEntry)
	}
	// SQL plans hold relation handles — unlike SPARQL plans they pin
	// catalog data. A miss means this db's epoch moved (or the text is
	// new): sweep the db's stale entries so plans bound to dropped tables
	// don't keep their rows reachable until the map bound trips.
	for k, e := range c.sql {
		if k.db == db && e.epoch != epoch {
			delete(c.sql, k)
		}
	}
	c.sql[key] = &sqlPlanEntry{plan: plan, epoch: epoch, opts: opts}
	c.mu.Unlock()
	c.misses.Add(1)
	return plan, nil
}

// SESQL returns the compiled form of a SESQL query, parsing on first sight.
func (c *QueryCache) SESQL(text string) (*sesql.Query, error) {
	c.mu.RLock()
	q, ok := c.sesql[text]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return q, nil
	}
	q, err := sesql.Parse(text)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if len(c.sesql) >= c.max {
		c.sesql = make(map[string]*sesql.Query)
	}
	c.sesql[text] = q
	c.mu.Unlock()
	c.misses.Add(1)
	return q, nil
}

// SPARQLPlan returns the compiled physical plan of a SPARQL query, parsing
// and planning on first sight.
func (c *QueryCache) SPARQLPlan(text string) (*sparql.Plan, error) {
	c.mu.RLock()
	p, ok := c.sparql[text]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return p, nil
	}
	q, err := sparql.Parse(text)
	if err != nil {
		return nil, err
	}
	p, err = sparql.Compile(q)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if len(c.sparql) >= c.max {
		c.sparql = make(map[string]*sparql.Plan)
	}
	c.sparql[text] = p
	c.mu.Unlock()
	c.misses.Add(1)
	return p, nil
}

// SPARQL returns the parsed form of a SPARQL query, compiling (and caching
// the full plan) on first sight. Kept for callers that only need the AST;
// the hot path is SPARQLPlan.
func (c *QueryCache) SPARQL(text string) (*sparql.Query, error) {
	p, err := c.SPARQLPlan(text)
	if err != nil {
		return nil, err
	}
	return p.Query(), nil
}

// sqlLen reports the live SQL-plan entry count (tests).
func (c *QueryCache) sqlLen() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.sql)
}

// Stats reports cumulative cache hits and misses (compiles).
func (c *QueryCache) Stats() (hits, misses int) {
	return int(c.hits.Load()), int(c.misses.Load())
}
