package core

import (
	"sync"
	"sync/atomic"

	"crosse/internal/sesql"
	"crosse/internal/sparql"
)

// QueryCache memoises compiled SESQL and SPARQL queries keyed on their exact
// source text, so repeated enrichment queries — the paper's E4/E5/E6
// workloads re-issue the same handful of SESQL texts, and every schema
// enrichment re-constructs the same SPARQL property query — skip lexing and
// parsing entirely.
//
// Invalidation rule: the cache key is the query text and nothing else.
// Compiled plans hold no data, only structure, so KB mutations (inserts,
// imports, retractions) never invalidate cached entries — the same compiled
// query simply evaluates against the updated graph. Only parse successes are
// cached; failed texts are re-parsed on each attempt.
//
// The cache is safe for concurrent use. Cached query objects are shared
// across callers: both evaluators treat parsed ASTs as immutable (the
// enricher shallow-copies the SELECT before rewriting it, and SPARQL
// evaluation never writes to the Query), which makes sharing sound.
type QueryCache struct {
	mu     sync.RWMutex
	sesql  map[string]*sesql.Query
	sparql map[string]*sparql.Query
	max    int

	// Counters are atomic so the hit path stays contention-free: hits
	// happen on every request under load and must not take the write lock.
	hits, misses atomic.Int64
}

// DefaultQueryCacheSize bounds each of the two cache maps. Real workloads
// use a small set of distinct query texts; the bound only guards against
// adversarial streams of unique queries.
const DefaultQueryCacheSize = 4096

// NewQueryCache returns an empty cache holding at most max entries per
// language (SESQL and SPARQL are bounded independently); max <= 0 uses
// DefaultQueryCacheSize.
func NewQueryCache(max int) *QueryCache {
	if max <= 0 {
		max = DefaultQueryCacheSize
	}
	return &QueryCache{
		sesql:  make(map[string]*sesql.Query),
		sparql: make(map[string]*sparql.Query),
		max:    max,
	}
}

// SESQL returns the compiled form of a SESQL query, parsing on first sight.
func (c *QueryCache) SESQL(text string) (*sesql.Query, error) {
	c.mu.RLock()
	q, ok := c.sesql[text]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return q, nil
	}
	q, err := sesql.Parse(text)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if len(c.sesql) >= c.max {
		c.sesql = make(map[string]*sesql.Query)
	}
	c.sesql[text] = q
	c.mu.Unlock()
	c.misses.Add(1)
	return q, nil
}

// SPARQL returns the compiled form of a SPARQL query, parsing on first sight.
func (c *QueryCache) SPARQL(text string) (*sparql.Query, error) {
	c.mu.RLock()
	q, ok := c.sparql[text]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return q, nil
	}
	q, err := sparql.Parse(text)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if len(c.sparql) >= c.max {
		c.sparql = make(map[string]*sparql.Query)
	}
	c.sparql[text] = q
	c.mu.Unlock()
	c.misses.Add(1)
	return q, nil
}

// Stats reports cumulative cache hits and misses (compiles).
func (c *QueryCache) Stats() (hits, misses int) {
	return int(c.hits.Load()), int(c.misses.Load())
}
