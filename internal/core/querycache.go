package core

import (
	"sync"
	"sync/atomic"

	"crosse/internal/sesql"
	"crosse/internal/sparql"
)

// QueryCache memoises compiled SESQL queries and compiled SPARQL *physical
// plans* keyed on their exact source text, so repeated enrichment queries —
// the paper's E4/E5/E6 workloads re-issue the same handful of SESQL texts,
// and every schema enrichment re-constructs the same SPARQL property query —
// skip lexing, parsing AND planning entirely. A cached sparql.Plan carries
// the variable-slot table, the join-ready pattern forms and the precompiled
// FILTER regexes (see internal/sparql), so a cache hit goes straight to
// ID-native execution.
//
// Invalidation rule: the cache key is the query text and nothing else.
// Compiled plans hold structure only — slot tables, constant tables,
// compiled regexes — never graph data or dictionary IDs (constants resolve
// to IDs per evaluation, against the target graph's dictionary), so KB
// mutations (inserts, imports, retractions) never invalidate cached entries:
// the same plan simply evaluates against the updated graph, and the same
// plan is valid against every user's view simultaneously. Only successful
// compilations are cached; failing texts are re-parsed on each attempt.
//
// The cache is safe for concurrent use. Cached objects are shared across
// callers: parsed SESQL ASTs are treated as immutable (the enricher
// shallow-copies the SELECT before rewriting it), and sparql.Plan is
// immutable by construction — all per-evaluation state lives in the
// executor — which makes sharing sound.
type QueryCache struct {
	mu     sync.RWMutex
	sesql  map[string]*sesql.Query
	sparql map[string]*sparql.Plan
	max    int

	// Counters are atomic so the hit path stays contention-free: hits
	// happen on every request under load and must not take the write lock.
	hits, misses atomic.Int64
}

// DefaultQueryCacheSize bounds each of the two cache maps. Real workloads
// use a small set of distinct query texts; the bound only guards against
// adversarial streams of unique queries.
const DefaultQueryCacheSize = 4096

// NewQueryCache returns an empty cache holding at most max entries per
// language (SESQL and SPARQL are bounded independently); max <= 0 uses
// DefaultQueryCacheSize.
func NewQueryCache(max int) *QueryCache {
	if max <= 0 {
		max = DefaultQueryCacheSize
	}
	return &QueryCache{
		sesql:  make(map[string]*sesql.Query),
		sparql: make(map[string]*sparql.Plan),
		max:    max,
	}
}

// SESQL returns the compiled form of a SESQL query, parsing on first sight.
func (c *QueryCache) SESQL(text string) (*sesql.Query, error) {
	c.mu.RLock()
	q, ok := c.sesql[text]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return q, nil
	}
	q, err := sesql.Parse(text)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if len(c.sesql) >= c.max {
		c.sesql = make(map[string]*sesql.Query)
	}
	c.sesql[text] = q
	c.mu.Unlock()
	c.misses.Add(1)
	return q, nil
}

// SPARQLPlan returns the compiled physical plan of a SPARQL query, parsing
// and planning on first sight.
func (c *QueryCache) SPARQLPlan(text string) (*sparql.Plan, error) {
	c.mu.RLock()
	p, ok := c.sparql[text]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return p, nil
	}
	q, err := sparql.Parse(text)
	if err != nil {
		return nil, err
	}
	p, err = sparql.Compile(q)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if len(c.sparql) >= c.max {
		c.sparql = make(map[string]*sparql.Plan)
	}
	c.sparql[text] = p
	c.mu.Unlock()
	c.misses.Add(1)
	return p, nil
}

// SPARQL returns the parsed form of a SPARQL query, compiling (and caching
// the full plan) on first sight. Kept for callers that only need the AST;
// the hot path is SPARQLPlan.
func (c *QueryCache) SPARQL(text string) (*sparql.Query, error) {
	p, err := c.SPARQLPlan(text)
	if err != nil {
		return nil, err
	}
	return p.Query(), nil
}

// Stats reports cumulative cache hits and misses (compiles).
func (c *QueryCache) Stats() (hits, misses int) {
	return int(c.hits.Load()), int(c.misses.Load())
}
