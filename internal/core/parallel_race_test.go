package core

// parallel_race_test.go — concurrency regression for intra-query
// parallelism: reader goroutines run parallel SQL and SESQL-enrichment
// queries (Parallelism 4, fixtures large enough that the morsel path
// actually engages) while a writer drives journaled mutations — SQL
// inserts, KB inserts, periodic compaction — through the same engine and
// platform. Meaningful chiefly under -race: the morsel workers must only
// ever touch state frozen at materialisation time, and every live read
// must go through the table/store locks the writers take.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"crosse/internal/engine"
	"crosse/internal/kb"
	"crosse/internal/rdf"
	"crosse/internal/sqlexec"
	"crosse/internal/sqlval"
	"crosse/internal/wal"
)

// parallelRaceBootstrap builds a platform big enough that the parallel
// paths engage at their default thresholds: 5000 SQL rows (the morsel
// gate is 4096) and 2600 KB triples on one predicate (the SPARQL head
// gate is 2048).
func parallelRaceBootstrap() (*engine.DB, *kb.Platform, error) {
	db := engine.Open()
	if _, err := db.ExecScript(`
		CREATE TABLE pts (id INT PRIMARY KEY, k TEXT, v DOUBLE, n INT);
		CREATE TABLE dim (id INT PRIMARY KEY, grp TEXT);
	`); err != nil {
		return nil, nil, err
	}
	pts, _ := db.Catalog().Table("pts")
	dim, _ := db.Catalog().Table("dim")
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 5000; i++ {
		if err := pts.Insert([]sqlval.Value{
			sqlval.NewInt(int64(i)),
			sqlval.NewString(fmt.Sprintf("k%d", i%97)),
			sqlval.NewFloat(rng.Float64() * 1000),
			sqlval.NewInt(int64(rng.Intn(1000))),
		}); err != nil {
			return nil, nil, err
		}
	}
	for i := 0; i < 1000; i++ {
		if err := dim.Insert([]sqlval.Value{
			sqlval.NewInt(int64(i)),
			sqlval.NewString(fmt.Sprintf("g%d", i%13)),
		}); err != nil {
			return nil, nil, err
		}
	}
	p := kb.NewPlatform()
	if err := p.RegisterUser("ada"); err != nil {
		return nil, nil, err
	}
	for i := 0; i < 2600; i++ {
		if _, err := p.Insert("ada", rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("%sk%d", DefaultIRIPrefix, i%97)),
			P: rdf.NewIRI(DefaultIRIPrefix + "rank"),
			O: rdf.NewLiteral(fmt.Sprintf("r%d", i%7)),
		}); err != nil {
			return nil, nil, err
		}
	}
	return db, p, nil
}

// TestParallelQueriesRaceJournaledWrites is the -race acceptance test for
// the tentpole: concurrent parallel queries must be data-race-free
// against journaled writes and compaction. Results are only sanity-checked
// (the data moves under the readers); the property under test is the
// absence of races and of spurious errors.
func TestParallelQueriesRaceJournaledWrites(t *testing.T) {
	j, restored, err := OpenJournal("j", JournalOptions{FS: wal.NewMemFS(), Sync: wal.SyncAlways}, parallelRaceBootstrap)
	if err != nil || restored {
		t.Fatalf("bootstrap: restored=%v err=%v", restored, err)
	}
	defer j.Close()

	enr := New(j.DB(), j.Platform(), nil)
	enr.SetQueryCache(NewQueryCache(0))
	enr.SetParallelism(4)

	const rounds = 40
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	fail := func(format string, a ...any) {
		select {
		case errc <- fmt.Errorf(format, a...):
		default:
		}
	}

	// Writer: journaled SQL inserts, KB inserts, periodic compaction.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds*3; i++ {
			if _, err := j.Exec(fmt.Sprintf(
				"INSERT INTO pts VALUES (%d, 'k%d', %d, %d)", 100000+i, i%97, i%1000, i%1000)); err != nil {
				fail("journal sql insert: %v", err)
				return
			}
			if _, err := j.Insert("ada", rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("%sk%d", DefaultIRIPrefix, i%97)),
				P: rdf.NewIRI(DefaultIRIPrefix + "rank"),
				O: rdf.NewLiteral(fmt.Sprintf("w%d", i)),
			}); err != nil {
				fail("journal kb insert: %v", err)
				return
			}
			if i%20 == 19 {
				if _, err := j.Compact(); err != nil {
					fail("compact: %v", err)
					return
				}
			}
		}
	}()

	// Parallel SQL readers: each query shape exercises a distinct merge
	// mode (grouped, plain probe+filter, sorted top-K).
	for _, q := range []string{
		`SELECT k, COUNT(*), MIN(v), MAX(v) FROM pts GROUP BY k`,
		`SELECT COUNT(*) FROM pts p JOIN dim d ON p.id = d.id WHERE p.n < 500`,
		`SELECT id, v FROM pts ORDER BY v DESC LIMIT 10`,
	} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				res, err := j.DB().QueryOpts(q, sqlexec.Options{Parallelism: 4})
				if err != nil {
					fail("%q: %v", q, err)
					return
				}
				if len(res.Rows) == 0 {
					fail("%q: no rows", q)
					return
				}
			}
		}()
	}

	// Enrichment reader: the full SESQL pipeline — parallel base query
	// plus the parallel SPARQL property probe over ada's live view.
	wg.Add(1)
	go func() {
		defer wg.Done()
		const q = `SELECT k, n FROM pts ENRICH SCHEMAEXTENSION(k, rank)`
		for i := 0; i < rounds; i++ {
			res, err := enr.Query("ada", q)
			if err != nil {
				fail("enrich: %v", err)
				return
			}
			if len(res.Rows) == 0 {
				fail("enrich: no rows")
				return
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
