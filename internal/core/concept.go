package core

import (
	"strings"

	"crosse/internal/engine"
	"crosse/internal/kb"
	"crosse/internal/sqlval"
)

// NewConceptChecker returns the validator used by the integrated annotation
// scenario (Sec. III-A): a subject is a valid annotation target iff it is a
// concept extracted from the original data source, i.e. some text column of
// the databank holds it. IRIs minted by the resource mapping are stripped
// back to their relational value before the lookup.
func NewConceptChecker(db *engine.DB, m *Mapping) kb.ConceptChecker {
	if m == nil {
		m = NewMapping("")
	}
	return func(subject string) bool {
		needle := subject
		if i := strings.LastIndexAny(needle, "#/"); i >= 0 && strings.Contains(needle, "://") {
			needle = needle[i+1:]
		}
		for _, name := range db.Catalog().Names() {
			rel, err := db.Catalog().Resolve(name)
			if err != nil {
				continue
			}
			schema := rel.Schema()
			var textCols []int
			for i, c := range schema {
				if c.Type == sqlval.TypeString {
					textCols = append(textCols, i)
				}
			}
			if len(textCols) == 0 {
				continue
			}
			found := false
			rel.Scan(func(row []sqlval.Value) bool {
				for _, ci := range textCols {
					if !row[ci].IsNull() && row[ci].Str() == needle {
						found = true
						return false
					}
				}
				return true
			})
			if found {
				return true
			}
		}
		return false
	}
}
