package core

// The fault-injection property suite for the write-ahead log: randomized
// workloads are crashed at arbitrary write/sync boundaries (clean error,
// short write, hard crash — over a power-loss-modeling in-memory
// filesystem), then recovered, and the recovered platform must equal a
// reference platform built by re-applying exactly the operations the
// journal acknowledged (plus, at most, the single in-flight operation a
// torn tail may preserve). This is the in-process half of the guarantee;
// cmd/walcheck + CI's wal-crash-recovery job prove the same across real
// processes with SIGKILL.

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"crosse/internal/engine"
	"crosse/internal/kb"
	"crosse/internal/rdf"
	"crosse/internal/sqlexec"
	"crosse/internal/wal"
)

func crashBootstrap() (*engine.DB, *kb.Platform, error) {
	db := engine.Open()
	if _, err := db.Exec("CREATE TABLE crash_events (id INT PRIMARY KEY, tag TEXT)"); err != nil {
		return nil, nil, err
	}
	p := kb.NewPlatform()
	for _, u := range []string{"ada", "ben"} {
		if err := p.RegisterUser(u); err != nil {
			return nil, nil, err
		}
	}
	return db, p, nil
}

// crashOp is one workload step with fixed, pre-computed arguments, so the
// identical sequence can drive a journal and, later, the bare reference
// platform. compact marks journal-only maintenance steps the reference
// skips.
type crashOp struct {
	name    string
	compact bool
	run     func(m Mutator, exec func(string) (*sqlexec.Result, error)) error
}

func crashIRI(s string) rdf.Term { return rdf.NewIRI("http://crash.example/" + s) }

// buildWorkload precomputes a deterministic operation sequence. Statement
// ids are tracked by construction ("stmt-N" from the platform counter),
// so imports and retracts reference ids that exist at that point.
func buildWorkload(n int) []crashOp {
	users := []string{"ada", "ben"}
	var ops []crashOp
	var live []string
	nextID := 0
	for i := 1; i <= n; i++ {
		i := i
		user := users[i%2]
		other := users[(i+1)%2]
		switch i % 9 {
		case 1, 4, 7:
			nextID++
			id := fmt.Sprintf("stmt-%d", nextID)
			live = append(live, id)
			t := rdf.Triple{S: crashIRI(fmt.Sprintf("s%d", i%17)), P: crashIRI(fmt.Sprintf("p%d", i%5)), O: rdf.NewLiteral(fmt.Sprintf("o%d", i))}
			var opts []kb.InsertOption
			if i%6 == 1 {
				opts = append(opts, kb.WithReference(kb.Reference{Title: fmt.Sprintf("t%d", i)}))
			}
			ops = append(ops, crashOp{name: fmt.Sprintf("insert %s", id), run: func(m Mutator, _ func(string) (*sqlexec.Result, error)) error {
				got, err := m.Insert(user, t, opts...)
				if err != nil {
					return err
				}
				if got != id {
					return fmt.Errorf("insert produced %s, workload expected %s", got, id)
				}
				return nil
			}})
		case 2:
			ops = append(ops, crashOp{name: "sql", run: func(_ Mutator, exec func(string) (*sqlexec.Result, error)) error {
				_, err := exec(fmt.Sprintf("INSERT INTO crash_events VALUES (%d, 'e%d')", i, i))
				return err
			}})
		case 3:
			if len(live) == 0 {
				ops = append(ops, crashOp{name: "declare", run: func(m Mutator, _ func(string) (*sqlexec.Result, error)) error {
					return m.DeclareResource(user, crashIRI(fmt.Sprintf("s%d", i)).Value)
				}})
				break
			}
			id := live[i%len(live)]
			ops = append(ops, crashOp{name: "import " + id, run: func(m Mutator, _ func(string) (*sqlexec.Result, error)) error {
				return m.Import(other, id)
			}})
		case 5:
			ops = append(ops, crashOp{name: "importfrom", run: func(m Mutator, _ func(string) (*sqlexec.Result, error)) error {
				_, err := m.ImportFrom(other, user, nil)
				return err
			}})
		case 6:
			ops = append(ops, crashOp{name: "query", run: func(m Mutator, _ func(string) (*sqlexec.Result, error)) error {
				return m.RegisterQuery(user, fmt.Sprintf("q%d", i),
					fmt.Sprintf("SELECT ?s WHERE { ?s <http://crash.example/p%d> ?o }", i%5))
			}})
		case 8:
			if len(live) == 0 {
				ops = append(ops, crashOp{name: "declare", run: func(m Mutator, _ func(string) (*sqlexec.Result, error)) error {
					return m.DeclareProperty(user, crashIRI(fmt.Sprintf("p%d", i%5)).Value)
				}})
				break
			}
			id := live[0]
			live = live[1:]
			// The owner is fixed at insert time by the same i%2 rotation.
			ops = append(ops, crashOp{name: "retract " + id, run: func(m Mutator, _ func(string) (*sqlexec.Result, error)) error {
				st, ok := m.(interface {
					Platform() *kb.Platform
				})
				var p *kb.Platform
				if ok {
					p = st.Platform()
				} else {
					p = m.(*kb.Platform)
				}
				s, err := p.Statement(id)
				if err != nil {
					return err
				}
				return m.Retract(s.Owner, id)
			}})
		default: // 0
			ops = append(ops, crashOp{name: "compact", compact: true, run: nil})
		}
	}
	return ops
}

// crashProbe pins the state both platforms must agree on.
type crashProbe struct {
	Users      []string
	ArenaLen   int
	DictLen    int
	ViewSizes  map[string]int
	Statements []string
	Events     []string
	Queries    map[string][]string
}

func probeCrash(db *engine.DB, p *kb.Platform) (*crashProbe, error) {
	res := &crashProbe{ViewSizes: map[string]int{}, Queries: map[string][]string{}, Users: p.Users()}
	res.ArenaLen = p.Shared().Len()
	res.DictLen = p.Shared().DictLen()
	for _, st := range p.Explore(nil) {
		res.Statements = append(res.Statements, fmt.Sprintf("%s|%s|%s|%v", st.ID, st.Owner, st.Triple, st.Believers()))
	}
	r, err := db.Query("SELECT id, tag FROM crash_events")
	if err != nil {
		return nil, err
	}
	for _, row := range r.Rows {
		res.Events = append(res.Events, row[0].String()+"|"+row[1].String())
	}
	sort.Strings(res.Events)
	for _, u := range p.Users() {
		res.ViewSizes[u] = p.ViewSize(u)
		for _, q := range p.Queries(u) {
			res.Queries[u] = append(res.Queries[u], q.Name+"|"+q.Text)
		}
		sort.Strings(res.Queries[u])
	}
	return res, nil
}

// TestCrashRecoveryProperty is the acceptance-criteria property: for
// randomized workloads crashed at arbitrary write/sync boundaries,
// recovery restores exactly the acknowledged prefix — no acknowledged
// mutation lost, at most the single in-flight record surfaced (and then
// only when the page cache tore, never under a strict power cut).
func TestCrashRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	kinds := []int{wal.FaultError, wal.FaultShortWrite, wal.FaultCrash}
	for trial := 0; trial < 40; trial++ {
		kind := kinds[trial%len(kinds)]
		strict := trial%2 == 0
		runCrashTrial(t, rng, trial, kind, strict)
	}
}

func runCrashTrial(t *testing.T, rng *rand.Rand, trial, kind int, strict bool) {
	mem := wal.NewMemFS()
	ffs := wal.NewFaultFS(mem)
	j, restored, err := OpenJournal("j", JournalOptions{FS: ffs, Sync: wal.SyncAlways}, crashBootstrap)
	if err != nil || restored {
		t.Fatalf("trial %d: bootstrap: restored=%v err=%v", trial, restored, err)
	}

	// The 40-op workload performs ~94 writes/syncs, so most trials fault
	// mid-workload and a few run fault-free (exercising the no-fault path).
	ops := buildWorkload(40)
	ffs.FaultAt(1+rng.Intn(110), kind)

	acked := 0 // ops acknowledged
	var ackedLSN uint64
	for _, op := range ops {
		var err error
		if op.compact {
			_, err = j.Compact()
		} else {
			err = op.run(j, j.Exec)
		}
		if err != nil {
			if !errors.Is(err, wal.ErrInjected) && !errors.Is(err, wal.ErrCrashed) {
				t.Fatalf("trial %d: op %q failed for a non-injected reason: %v", trial, op.name, err)
			}
			break
		}
		acked++
		ackedLSN = j.Status().LSN
	}

	// The "machine" dies: un-synced state is lost — all of it under a
	// strict power cut, a random prefix survives when the page cache tore.
	if strict {
		mem.Crash()
	} else {
		mem.CrashKeeping(rng)
	}

	j2, restored, err := OpenJournal("j", JournalOptions{FS: mem, Sync: wal.SyncAlways}, crashBootstrap)
	if err != nil {
		t.Fatalf("trial %d (kind %d, acked %d): recovery failed: %v", trial, kind, acked, err)
	}
	if !restored {
		t.Fatalf("trial %d: recovery bootstrapped instead of restoring", trial)
	}
	m := j2.Status().LSN
	if m < ackedLSN {
		t.Fatalf("trial %d: lost acknowledged records: recovered LSN %d < acknowledged %d", trial, m, ackedLSN)
	}
	if m > ackedLSN+1 {
		t.Fatalf("trial %d: recovered LSN %d surfaced more than the in-flight record past %d", trial, m, ackedLSN)
	}
	if strict && m != ackedLSN {
		t.Fatalf("trial %d: strict power cut surfaced an unacknowledged record: LSN %d vs acknowledged %d", trial, m, ackedLSN)
	}

	// Reference: the acknowledged prefix (plus the in-flight op if its
	// record survived the torn page cache) applied to a bare platform.
	rdb, rp, err := crashBootstrap()
	if err != nil {
		t.Fatal(err)
	}
	apply := acked
	if m > ackedLSN && apply < len(ops) {
		apply++
	}
	for _, op := range ops[:apply] {
		if op.compact {
			continue
		}
		if err := op.run(rp, rdb.ExecScript); err != nil {
			t.Fatalf("trial %d: reference op %q: %v", trial, op.name, err)
		}
	}
	got, err := probeCrash(j2.DB(), j2.Platform())
	if err != nil {
		t.Fatalf("trial %d: probe recovered: %v", trial, err)
	}
	want, err := probeCrash(rdb, rp)
	if err != nil {
		t.Fatalf("trial %d: probe reference: %v", trial, err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("trial %d (kind %d, strict %v): recovered state diverges after %d acked ops (LSN %d)\n--- reference\n%+v\n--- recovered\n%+v",
			trial, kind, strict, acked, m, want, got)
	}
	if err := j2.Close(); err != nil {
		t.Fatalf("trial %d: close recovered journal: %v", trial, err)
	}
}

// Mid-log corruption (a flipped byte with intact records after it) must
// refuse recovery rather than silently skip records.
func TestJournalRejectsMidLogCorruption(t *testing.T) {
	mem := wal.NewMemFS()
	j, _, err := OpenJournal("j", JournalOptions{FS: mem, Sync: wal.SyncAlways}, crashBootstrap)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range buildWorkload(20) {
		if op.compact {
			continue
		}
		if err := op.run(j, j.Exec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	raw, err := mem.ReadFile(LogPath("j"))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	f, err := mem.OpenAppend(LogPath("j"), 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(raw)
	f.Sync()
	mem.SyncDir("j")

	_, _, err = OpenJournal("j", JournalOptions{FS: mem}, crashBootstrap)
	if err == nil || !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("mid-log corruption recovered: %v", err)
	}
}

// A log whose anchoring image is missing must be refused, not guessed at.
func TestJournalRefusesOrphanLog(t *testing.T) {
	mem := wal.NewMemFS()
	j, _, err := OpenJournal("j", JournalOptions{FS: mem, Sync: wal.SyncAlways}, crashBootstrap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Insert("ada", rdf.Triple{S: crashIRI("s"), P: crashIRI("p"), O: rdf.NewLiteral("o")}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := mem.Remove(ImagePath("j")); err != nil {
		t.Fatal(err)
	}
	mem.SyncDir("j")
	if _, _, err := OpenJournal("j", JournalOptions{FS: mem}, crashBootstrap); err == nil {
		t.Fatal("orphan log opened")
	}
}
