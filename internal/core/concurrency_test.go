package core

import (
	"fmt"
	"sync"
	"testing"

	"crosse/internal/rdf"
)

// TestConcurrentQueriesAndAnnotations exercises the platform the way a
// multi-user deployment does: queries, annotations and imports racing.
// Run with -race to validate the locking story.
func TestConcurrentQueriesAndAnnotations(t *testing.T) {
	e := fixture(t)
	e.Activity = NewActivity()
	const workers = 6
	for w := 0; w < workers; w++ {
		if err := e.Platform.RegisterUser(fmt.Sprintf("w%d", w)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers*3)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			user := fmt.Sprintf("w%d", w)
			for i := 0; i < 20; i++ {
				if _, err := e.Platform.Insert(user, rdf.Triple{
					S: smg(fmt.Sprintf("E%d_%d", w, i)),
					P: smg("dangerLevel"),
					O: rdf.NewLiteral("high"),
				}); err != nil {
					errCh <- err
					return
				}
				if _, err := e.Query(user, `SELECT elem_name FROM elem_contained WHERE landfill_name = 'a'
ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)`); err != nil {
					errCh <- err
					return
				}
				if i%5 == 0 {
					if _, err := e.Platform.ImportFrom(user, "alice", nil); err != nil {
						errCh <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	// Activity recorded for every worker.
	for w := 0; w < workers; w++ {
		if e.Activity.QueryCount(fmt.Sprintf("w%d", w)) != 20 {
			t.Errorf("w%d query count = %d", w, e.Activity.QueryCount(fmt.Sprintf("w%d", w)))
		}
	}
}
