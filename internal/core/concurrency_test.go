package core

import (
	"fmt"
	"sync"
	"testing"

	"crosse/internal/kb"
	"crosse/internal/rdf"
	"crosse/internal/sparql"
)

// TestConcurrentQueriesAndAnnotations exercises the platform the way a
// multi-user deployment does: queries, annotations and imports racing.
// Run with -race to validate the locking story.
func TestConcurrentQueriesAndAnnotations(t *testing.T) {
	e := fixture(t)
	e.Activity = NewActivity()
	const workers = 6
	for w := 0; w < workers; w++ {
		if err := e.Platform.RegisterUser(fmt.Sprintf("w%d", w)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers*3)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			user := fmt.Sprintf("w%d", w)
			for i := 0; i < 20; i++ {
				if _, err := e.Platform.Insert(user, rdf.Triple{
					S: smg(fmt.Sprintf("E%d_%d", w, i)),
					P: smg("dangerLevel"),
					O: rdf.NewLiteral("high"),
				}); err != nil {
					errCh <- err
					return
				}
				if _, err := e.Query(user, `SELECT elem_name FROM elem_contained WHERE landfill_name = 'a'
ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)`); err != nil {
					errCh <- err
					return
				}
				if i%5 == 0 {
					if _, err := e.Platform.ImportFrom(user, "alice", nil); err != nil {
						errCh <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	// Activity recorded for every worker.
	for w := 0; w < workers; w++ {
		if e.Activity.QueryCount(fmt.Sprintf("w%d", w)) != 20 {
			t.Errorf("w%d query count = %d", w, e.Activity.QueryCount(fmt.Sprintf("w%d", w)))
		}
	}
}

// TestConcurrentImportRetractVsStreamedQueries races belief imports and
// retractions against streamed SPARQL and full SESQL enrichment over the
// overlay views: many users share one crowdsourced corpus held once in the
// platform's encoded arena, mutate their own overlays, and query
// concurrently. Run with -race to validate the arena/view locking story
// (mutations must never invalidate an in-flight read transaction).
func TestConcurrentImportRetractVsStreamedQueries(t *testing.T) {
	e := fixture(t)
	const workers = 6

	// Shared corpus: one expert owns a few hundred statements.
	if err := e.Platform.RegisterUser("expert"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := e.Platform.Insert("expert", rdf.Triple{
			S: smg(fmt.Sprintf("Elem%d", i)),
			P: smg("dangerLevel"),
			O: rdf.NewLiteral("high"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < workers; w++ {
		if err := e.Platform.RegisterUser(fmt.Sprintf("r%d", w)); err != nil {
			t.Fatal(err)
		}
	}

	sparqlText := `SELECT ?x ?l WHERE { ?x <` + DefaultIRIPrefix + `dangerLevel> ?l }`
	parsed, err := sparql.Parse(sparqlText)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sparql.Compile(parsed)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, workers*4)
	for w := 0; w < workers; w++ {
		user := fmt.Sprintf("r%d", w)

		wg.Add(1)
		go func() { // mutator: import the corpus, retract own beliefs, repeat
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := e.Platform.ImportFrom(user, "expert", nil); err != nil {
					errCh <- err
					return
				}
				// Insert and immediately retract an owned statement so
				// owner-retraction races the other users' reads too.
				id, err := e.Platform.Insert(user, rdf.Triple{
					S: smg(fmt.Sprintf("Own%s_%d", user, i)),
					P: smg("dangerLevel"),
					O: rdf.NewLiteral("low"),
				})
				if err != nil {
					errCh <- err
					return
				}
				if err := e.Platform.Retract(user, id); err != nil {
					errCh <- err
					return
				}
				// Retract an imported belief (non-owner retraction).
				for _, st := range e.Platform.Explore(func(s *kb.Statement) bool {
					return s.Owner == "expert"
				})[:1] {
					if err := e.Platform.Retract(user, st.ID); err != nil {
						errCh <- err
						return
					}
				}
			}
		}()

		wg.Add(1)
		go func() { // reader: streamed SPARQL over the user's overlay view
			defer wg.Done()
			for i := 0; i < 25; i++ {
				view, err := e.Platform.View(user)
				if err != nil {
					errCh <- err
					return
				}
				n := 0
				if err := plan.Stream(view, func(s sparql.Solution) bool {
					n++
					return true
				}); err != nil {
					errCh <- err
					return
				}
			}
		}()

		wg.Add(1)
		go func() { // reader: full SESQL enrichment pipeline
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := e.Query(user, `SELECT elem_name FROM elem_contained WHERE landfill_name = 'a'
ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)`); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Post-race sanity: the corpus is still held once in the shared arena
	// and every surviving view is consistent with its statements.
	for w := 0; w < workers; w++ {
		user := fmt.Sprintf("r%d", w)
		want := 0
		for _, st := range e.Platform.Explore(nil) {
			if st.BelievedBy(user) {
				want++
			}
		}
		if got := e.Platform.ViewSize(user); got != want {
			t.Errorf("%s: view size %d, want %d believed statements", user, got, want)
		}
	}
}
