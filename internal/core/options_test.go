package core

import (
	"testing"

	"crosse/internal/sparql"
	"crosse/internal/sqlexec"
)

func TestExecOptionsRoundTrip(t *testing.T) {
	o := ExecOptions{
		Parallelism:      3,
		PartialResults:   true,
		DisableHashJoin:  true,
		DisableIndexSeek: true,
		DisableTopK:      true,
		DisableReorder:   true,
	}
	wantSQL := sqlexec.Options{
		DisableHashJoin:  true,
		DisableIndexSeek: true,
		DisableTopK:      true,
		Parallelism:      3,
		PartialResults:   true,
	}
	if got := o.SQL(); got != wantSQL {
		t.Errorf("SQL() = %+v, want %+v", got, wantSQL)
	}
	wantSPARQL := sparql.Options{DisableReorder: true, Parallelism: 3}
	if got := o.SPARQL(); got != wantSPARQL {
		t.Errorf("SPARQL() = %+v, want %+v", got, wantSPARQL)
	}

	// The compatibility constructors must survive a round trip for every
	// field the target executor understands.
	if got := FromSQLOptions(o.SQL()).SQL(); got != wantSQL {
		t.Errorf("FromSQLOptions round trip = %+v, want %+v", got, wantSQL)
	}
	if got := FromSPARQLOptions(o.SPARQL()).SPARQL(); got != wantSPARQL {
		t.Errorf("FromSPARQLOptions round trip = %+v, want %+v", got, wantSPARQL)
	}
}

func TestEnricherExecOptionsSetters(t *testing.T) {
	e := &Enricher{}
	e.SetParallelism(4)
	e.SetPartialResults(true)
	want := ExecOptions{Parallelism: 4, PartialResults: true}
	if got := e.ExecOptions(); got != want {
		t.Errorf("ExecOptions() = %+v, want %+v", got, want)
	}
	e.SetExecOptions(ExecOptions{DisableTopK: true})
	if got := e.ExecOptions(); got != (ExecOptions{DisableTopK: true}) {
		t.Errorf("SetExecOptions not applied: %+v", got)
	}
}
