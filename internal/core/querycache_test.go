package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"crosse/internal/engine"
	"crosse/internal/sqlexec"
	"crosse/internal/sqlparser"
)

func TestQueryCacheReusesCompiledQueries(t *testing.T) {
	c := NewQueryCache(0)
	const sesqlText = `SELECT a FROM t ENRICH SCHEMAEXTENSION(a, p)`
	q1, err := c.SESQL(sesqlText)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := c.SESQL(sesqlText)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Error("second SESQL compile must return the cached object")
	}

	const sparqlText = `SELECT ?s ?o WHERE { ?s <http://x/p> ?o }`
	s1, err := c.SPARQL(sparqlText)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.SPARQL(sparqlText)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("second SPARQL compile must return the cached object")
	}

	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Errorf("stats = (%d hits, %d misses), want (2, 2)", hits, misses)
	}
}

func TestQueryCacheDoesNotCacheErrors(t *testing.T) {
	c := NewQueryCache(0)
	for i := 0; i < 2; i++ {
		if _, err := c.SESQL("SELEKT nope"); err == nil {
			t.Fatal("bad SESQL must fail")
		}
		if _, err := c.SPARQL("SELEKT nope"); err == nil {
			t.Fatal("bad SPARQL must fail")
		}
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 0 {
		t.Errorf("parse failures must not populate the cache, stats = (%d, %d)", hits, misses)
	}
}

func TestQueryCacheBound(t *testing.T) {
	c := NewQueryCache(2)
	texts := []string{
		`SELECT a FROM t`,
		`SELECT b FROM t`,
		`SELECT c FROM t`,
	}
	for _, q := range texts {
		if _, err := c.SESQL(q); err != nil {
			t.Fatal(err)
		}
	}
	// Overflow flushed the map; re-compiling the survivor is a miss, not a
	// crash — the bound only limits memory, never correctness.
	if _, err := c.SESQL(texts[2]); err != nil {
		t.Fatal(err)
	}
}

func TestQueryCacheConcurrent(t *testing.T) {
	c := NewQueryCache(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := c.SESQL(`SELECT a FROM t ENRICH SCHEMAEXTENSION(a, p)`); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.SPARQL(`SELECT ?s WHERE { ?s <http://x/p> ?o }`); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// parseSelect parses a SELECT text for SQLSelect's miss path.
func parseSelect(t *testing.T, text string) func() (*sqlparser.Select, error) {
	t.Helper()
	return func() (*sqlparser.Select, error) {
		st, err := sqlparser.Parse(text)
		if err != nil {
			return nil, err
		}
		return st.(*sqlparser.Select), nil
	}
}

// A cached SQL physical plan is reused verbatim while the schema stands
// still, and recompiled — never served stale — after any DDL.
func TestSQLPlanCacheEpochInvalidation(t *testing.T) {
	db := engine.Open()
	if _, err := db.Exec(`CREATE TABLE q (id INT PRIMARY KEY, s TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO q VALUES (1, 'a'), (2, 'b')`); err != nil {
		t.Fatal(err)
	}
	c := NewQueryCache(0)
	const text = `SELECT s FROM q ORDER BY id`

	p1, err := c.SQLSelect(db.Catalog(), text, sqlexec.Options{}, parseSelect(t, text))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.SQLSelect(db.Catalog(), text, sqlexec.Options{}, parseSelect(t, text))
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("same epoch: second lookup must return the cached plan")
	}

	// Data mutations never invalidate.
	if _, err := db.Exec(`INSERT INTO q VALUES (3, 'c')`); err != nil {
		t.Fatal(err)
	}
	if p3, _ := c.SQLSelect(db.Catalog(), text, sqlexec.Options{}, parseSelect(t, text)); p3 != p1 {
		t.Error("data mutation must not invalidate the cached plan")
	}
	res, err := p1.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("cached plan sees %d rows, want 3", len(res.Rows))
	}

	// DDL does: drop and recreate the table with different content — the
	// stale plan (bound to the old table) must not serve.
	if _, err := db.Exec(`DROP TABLE q`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE q (id INT PRIMARY KEY, s TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO q VALUES (9, 'z')`); err != nil {
		t.Fatal(err)
	}
	p4, err := c.SQLSelect(db.Catalog(), text, sqlexec.Options{}, parseSelect(t, text))
	if err != nil {
		t.Fatal(err)
	}
	if p4 == p1 {
		t.Fatal("DDL must invalidate the cached plan")
	}
	res, err = p4.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "z" {
		t.Errorf("recompiled plan returned %v", res.Rows)
	}

	// CREATE INDEX is DDL too (it changes seek choices).
	before := db.Catalog().SchemaEpoch()
	if _, err := db.Exec(`CREATE INDEX idx_s ON q (s)`); err != nil {
		t.Fatal(err)
	}
	if db.Catalog().SchemaEpoch() == before {
		t.Error("CREATE INDEX must bump the schema epoch")
	}
	if p5, _ := c.SQLSelect(db.Catalog(), text, sqlexec.Options{}, parseSelect(t, text)); p5 == p4 {
		t.Error("CREATE INDEX must invalidate cached plans")
	}
}

// A schema change must not leave plans for the old epoch pinning dropped
// tables: the next miss for that database sweeps its stale entries.
func TestSQLPlanCacheSweepsStaleEpochs(t *testing.T) {
	db := engine.Open()
	if _, err := db.Exec(`CREATE TABLE a (x INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE b (y INT)`); err != nil {
		t.Fatal(err)
	}
	c := NewQueryCache(0)
	for _, q := range []string{`SELECT x FROM a`, `SELECT y FROM b`} {
		if _, err := c.SQLSelect(db.Catalog(), q, sqlexec.Options{}, parseSelect(t, q)); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.sqlLen(); n != 2 {
		t.Fatalf("entries = %d, want 2", n)
	}
	if _, err := db.Exec(`DROP TABLE a`); err != nil {
		t.Fatal(err)
	}
	// Next miss (any text, same db) sweeps every stale-epoch entry —
	// including the plan still holding the dropped table a.
	if _, err := c.SQLSelect(db.Catalog(), `SELECT y FROM b`, sqlexec.Options{}, parseSelect(t, `SELECT y FROM b`)); err != nil {
		t.Fatal(err)
	}
	if n := c.sqlLen(); n != 1 {
		t.Fatalf("entries after sweep = %d, want 1", n)
	}
}

// Races DDL (epoch bumps) against cached-plan execution. Run under -race:
// the property is freedom from data races plus never observing a
// half-applied catalog — every execution sees either the old or the new
// world, and post-DDL lookups recompile.
func TestSQLPlanCacheDDLRace(t *testing.T) {
	db := engine.Open()
	if _, err := db.Exec(`CREATE TABLE q (id INT PRIMARY KEY, s TEXT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := db.Exec(fmt.Sprintf(`INSERT INTO q VALUES (%d, 's%d')`, i, i%7)); err != nil {
			t.Fatal(err)
		}
	}
	c := NewQueryCache(0)
	const text = `SELECT COUNT(*) FROM q WHERE s = 's3'`

	var wg, ddlWG sync.WaitGroup
	stop := make(chan struct{})
	ddlWG.Add(1)
	go func() { // DDL churn: unrelated tables plus an index on the hot column
		defer ddlWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Exec(fmt.Sprintf(`CREATE TABLE tmp_%d (x INT)`, i)); err != nil {
				t.Error(err)
				return
			}
			if i == 3 {
				if _, err := db.Exec(`CREATE INDEX idx_qs ON q (s)`); err != nil {
					t.Error(err)
					return
				}
			}
			if _, err := db.Exec(fmt.Sprintf(`DROP TABLE tmp_%d`, i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				p, err := c.SQLSelect(db.Catalog(), text, sqlexec.Options{}, parseSelect(t, text))
				if err != nil {
					t.Error(err)
					return
				}
				res, err := p.Run()
				if err != nil {
					t.Error(err)
					return
				}
				if got := res.Rows[0][0].Int(); got != 7 {
					t.Errorf("count = %d, want 7", got)
					return
				}
			}
		}()
	}
	wg.Wait() // readers first; then stop the DDL goroutine
	close(stop)
	ddlWG.Wait()
}

// The cache must be behaviour-transparent: repeated evaluations through the
// cache produce exactly the same results as a cache-disabled enricher, and
// the second run must be served from cache (hits advance, misses don't).
func TestEnricherCacheTransparent(t *testing.T) {
	queries := []string{
		`SELECT elem_name, landfill_name FROM elem_contained WHERE landfill_name = 'a'
ENRICH SCHEMAEXTENSION( elem_name, dangerLevel)`,
		`SELECT name, city FROM landfill ENRICH SCHEMAREPLACEMENT(city, inCountry)`,
	}
	cached := fixture(t)
	uncached := fixture(t)
	uncached.SetQueryCache(nil)

	for round := 0; round < 2; round++ {
		for _, q := range queries {
			rc, err := cached.Query("alice", q)
			if err != nil {
				t.Fatal(err)
			}
			ru, err := uncached.Query("alice", q)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Join(rc.Columns, ",") != strings.Join(ru.Columns, ",") {
				t.Errorf("round %d: columns differ: %v vs %v", round, rc.Columns, ru.Columns)
			}
			if strings.Join(resultRows(rc), " ") != strings.Join(resultRows(ru), " ") {
				t.Errorf("round %d: rows differ for %q", round, q)
			}
		}
	}
	hits, misses := cached.QueryCacheStats()
	if hits == 0 {
		t.Error("second round must be served from the compiled-query cache")
	}
	// Each distinct SESQL text and constructed SPARQL text compiles once.
	firstRoundMisses := misses
	for _, q := range queries {
		if _, err := cached.Query("alice", q); err != nil {
			t.Fatal(err)
		}
	}
	if _, misses2 := cached.QueryCacheStats(); misses2 != firstRoundMisses {
		t.Errorf("extra rounds must not compile again: misses %d -> %d", firstRoundMisses, misses2)
	}
	if h, m := uncached.QueryCacheStats(); h != 0 || m != 0 {
		t.Errorf("disabled cache must report zero stats, got (%d, %d)", h, m)
	}
}
