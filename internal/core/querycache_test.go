package core

import (
	"strings"
	"sync"
	"testing"
)

func TestQueryCacheReusesCompiledQueries(t *testing.T) {
	c := NewQueryCache(0)
	const sesqlText = `SELECT a FROM t ENRICH SCHEMAEXTENSION(a, p)`
	q1, err := c.SESQL(sesqlText)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := c.SESQL(sesqlText)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Error("second SESQL compile must return the cached object")
	}

	const sparqlText = `SELECT ?s ?o WHERE { ?s <http://x/p> ?o }`
	s1, err := c.SPARQL(sparqlText)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.SPARQL(sparqlText)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("second SPARQL compile must return the cached object")
	}

	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Errorf("stats = (%d hits, %d misses), want (2, 2)", hits, misses)
	}
}

func TestQueryCacheDoesNotCacheErrors(t *testing.T) {
	c := NewQueryCache(0)
	for i := 0; i < 2; i++ {
		if _, err := c.SESQL("SELEKT nope"); err == nil {
			t.Fatal("bad SESQL must fail")
		}
		if _, err := c.SPARQL("SELEKT nope"); err == nil {
			t.Fatal("bad SPARQL must fail")
		}
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 0 {
		t.Errorf("parse failures must not populate the cache, stats = (%d, %d)", hits, misses)
	}
}

func TestQueryCacheBound(t *testing.T) {
	c := NewQueryCache(2)
	texts := []string{
		`SELECT a FROM t`,
		`SELECT b FROM t`,
		`SELECT c FROM t`,
	}
	for _, q := range texts {
		if _, err := c.SESQL(q); err != nil {
			t.Fatal(err)
		}
	}
	// Overflow flushed the map; re-compiling the survivor is a miss, not a
	// crash — the bound only limits memory, never correctness.
	if _, err := c.SESQL(texts[2]); err != nil {
		t.Fatal(err)
	}
}

func TestQueryCacheConcurrent(t *testing.T) {
	c := NewQueryCache(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := c.SESQL(`SELECT a FROM t ENRICH SCHEMAEXTENSION(a, p)`); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.SPARQL(`SELECT ?s WHERE { ?s <http://x/p> ?o }`); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// The cache must be behaviour-transparent: repeated evaluations through the
// cache produce exactly the same results as a cache-disabled enricher, and
// the second run must be served from cache (hits advance, misses don't).
func TestEnricherCacheTransparent(t *testing.T) {
	queries := []string{
		`SELECT elem_name, landfill_name FROM elem_contained WHERE landfill_name = 'a'
ENRICH SCHEMAEXTENSION( elem_name, dangerLevel)`,
		`SELECT name, city FROM landfill ENRICH SCHEMAREPLACEMENT(city, inCountry)`,
	}
	cached := fixture(t)
	uncached := fixture(t)
	uncached.SetQueryCache(nil)

	for round := 0; round < 2; round++ {
		for _, q := range queries {
			rc, err := cached.Query("alice", q)
			if err != nil {
				t.Fatal(err)
			}
			ru, err := uncached.Query("alice", q)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Join(rc.Columns, ",") != strings.Join(ru.Columns, ",") {
				t.Errorf("round %d: columns differ: %v vs %v", round, rc.Columns, ru.Columns)
			}
			if strings.Join(resultRows(rc), " ") != strings.Join(resultRows(ru), " ") {
				t.Errorf("round %d: rows differ for %q", round, q)
			}
		}
	}
	hits, misses := cached.QueryCacheStats()
	if hits == 0 {
		t.Error("second round must be served from the compiled-query cache")
	}
	// Each distinct SESQL text and constructed SPARQL text compiles once.
	firstRoundMisses := misses
	for _, q := range queries {
		if _, err := cached.Query("alice", q); err != nil {
			t.Fatal(err)
		}
	}
	if _, misses2 := cached.QueryCacheStats(); misses2 != firstRoundMisses {
		t.Errorf("extra rounds must not compile again: misses %d -> %d", firstRoundMisses, misses2)
	}
	if h, m := uncached.QueryCacheStats(); h != 0 || m != 0 {
		t.Errorf("disabled cache must report zero stats, got (%d, %d)", h, m)
	}
}
