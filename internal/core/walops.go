package core

// This file is the record codec for the platform write-ahead log: each
// acknowledged mutation is one self-contained record (encoded with the
// snapshot wire primitives from internal/rdf, the PR 4 varint codec) that
// applyOp can re-apply to a platform restored from the anchoring image.
// Records are ID-level — an ImportFrom batch stores the statement ids it
// resolved, not the filter closure, and an Insert stores the id it was
// acknowledged with so replay can verify determinism (ids are allocated
// from a platform counter, so replaying records in log order reproduces
// them exactly).

import (
	"bufio"
	"bytes"
	"fmt"

	"crosse/internal/engine"
	"crosse/internal/kb"
	"crosse/internal/rdf"
)

// Operation kinds. Append-only: never renumber, only add.
const (
	opRegisterUser  = 1
	opInsert        = 2
	opImport        = 3
	opImportBatch   = 4
	opRetract       = 5
	opRegisterQuery = 6
	opDeclare       = 7
	opSQL           = 8
)

// opEncoder accumulates one record payload.
type opEncoder struct {
	buf bytes.Buffer
	bw  *bufio.Writer
	enc rdf.SnapshotEncoder
}

func newOpEncoder(kind byte) *opEncoder {
	e := &opEncoder{}
	e.bw = bufio.NewWriter(&e.buf)
	e.enc = rdf.SnapshotEncoder{W: e.bw}
	e.enc.Byte(kind)
	return e
}

func (e *opEncoder) bytes() []byte {
	e.bw.Flush()
	return e.buf.Bytes()
}

func encRegisterUser(name string) []byte {
	e := newOpEncoder(opRegisterUser)
	e.enc.String(name)
	return e.bytes()
}

// encInsert records an insertion. The Integrated flag is deliberately NOT
// recorded: it is input validation against the databank (the concept
// checker), not state, and re-validating during replay would make recovery
// depend on checker wiring that may not exist yet at replay time.
func encInsert(id, user string, t rdf.Triple, ref *kb.Reference) []byte {
	e := newOpEncoder(opInsert)
	e.enc.String(id)
	e.enc.String(user)
	e.enc.Term(t.S)
	e.enc.Term(t.P)
	e.enc.Term(t.O)
	if ref == nil {
		e.enc.Byte(0)
	} else {
		e.enc.Byte(1)
		e.enc.String(ref.Title)
		e.enc.String(ref.Author)
		e.enc.String(ref.Link)
		e.enc.String(ref.File)
	}
	return e.bytes()
}

func encImport(user, id string) []byte {
	e := newOpEncoder(opImport)
	e.enc.String(user)
	e.enc.String(id)
	return e.bytes()
}

func encImportBatch(user string, ids []string) []byte {
	e := newOpEncoder(opImportBatch)
	e.enc.String(user)
	e.enc.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		e.enc.String(id)
	}
	return e.bytes()
}

func encRetract(user, id string) []byte {
	e := newOpEncoder(opRetract)
	e.enc.String(user)
	e.enc.String(id)
	return e.bytes()
}

func encRegisterQuery(owner, name, text string) []byte {
	e := newOpEncoder(opRegisterQuery)
	e.enc.String(owner)
	e.enc.String(name)
	e.enc.String(text)
	return e.bytes()
}

func encDeclare(kind kb.DeclKind, user, iri string) []byte {
	e := newOpEncoder(opDeclare)
	e.enc.Byte(byte(kind))
	e.enc.String(user)
	e.enc.String(iri)
	return e.bytes()
}

func encSQL(text string) []byte {
	e := newOpEncoder(opSQL)
	e.enc.String(text)
	return e.bytes()
}

// applyOp replays one log record against the platform pair. It is the
// replay half of the journal's logged-mutation path: every branch mirrors
// the live call whose acknowledgement wrote the record.
func applyOp(db *engine.DB, p *kb.Platform, payload []byte) error {
	dec := &rdf.SnapshotDecoder{R: bytes.NewReader(payload)}
	kind, err := dec.Byte()
	if err != nil {
		return fmt.Errorf("core: wal record kind: %w", err)
	}
	switch kind {
	case opRegisterUser:
		name, err := dec.String()
		if err != nil {
			return err
		}
		return p.RegisterUser(name)

	case opInsert:
		id, err := dec.String()
		if err != nil {
			return err
		}
		user, err := dec.String()
		if err != nil {
			return err
		}
		var t rdf.Triple
		if t.S, err = dec.Term(); err != nil {
			return err
		}
		if t.P, err = dec.Term(); err != nil {
			return err
		}
		if t.O, err = dec.Term(); err != nil {
			return err
		}
		hasRef, err := dec.Byte()
		if err != nil {
			return err
		}
		var opts []kb.InsertOption
		if hasRef != 0 {
			var ref kb.Reference
			if ref.Title, err = dec.String(); err != nil {
				return err
			}
			if ref.Author, err = dec.String(); err != nil {
				return err
			}
			if ref.Link, err = dec.String(); err != nil {
				return err
			}
			if ref.File, err = dec.String(); err != nil {
				return err
			}
			opts = append(opts, kb.WithReference(ref))
		}
		got, err := p.Insert(user, t, opts...)
		if err != nil {
			return err
		}
		if got != id {
			return fmt.Errorf("core: wal replay diverged: insert produced id %q, log recorded %q", got, id)
		}
		return nil

	case opImport:
		user, err := dec.String()
		if err != nil {
			return err
		}
		id, err := dec.String()
		if err != nil {
			return err
		}
		return p.Import(user, id)

	case opImportBatch:
		user, err := dec.String()
		if err != nil {
			return err
		}
		n, err := dec.Uvarint()
		if err != nil {
			return err
		}
		if n > uint64(len(payload)) {
			return fmt.Errorf("core: wal import batch declares %d ids in a %d-byte record", n, len(payload))
		}
		for i := uint64(0); i < n; i++ {
			id, err := dec.String()
			if err != nil {
				return err
			}
			if err := p.Import(user, id); err != nil {
				return err
			}
		}
		return nil

	case opRetract:
		user, err := dec.String()
		if err != nil {
			return err
		}
		id, err := dec.String()
		if err != nil {
			return err
		}
		return p.Retract(user, id)

	case opRegisterQuery:
		owner, err := dec.String()
		if err != nil {
			return err
		}
		name, err := dec.String()
		if err != nil {
			return err
		}
		text, err := dec.String()
		if err != nil {
			return err
		}
		return p.RegisterQuery(owner, name, text)

	case opDeclare:
		k, err := dec.Byte()
		if err != nil {
			return err
		}
		user, err := dec.String()
		if err != nil {
			return err
		}
		iri, err := dec.String()
		if err != nil {
			return err
		}
		switch kb.DeclKind(k) {
		case kb.DeclResource:
			return p.DeclareResource(user, iri)
		case kb.DeclProperty:
			return p.DeclareProperty(user, iri)
		default:
			return fmt.Errorf("core: wal declare record with unknown kind %d", k)
		}

	case opSQL:
		text, err := dec.String()
		if err != nil {
			return err
		}
		if _, err := db.ExecScript(text); err != nil {
			return fmt.Errorf("core: wal replay SQL: %w", err)
		}
		return nil

	default:
		return fmt.Errorf("core: wal record with unknown kind %d", kind)
	}
}
