// Package sesql implements the SESQL language front-end (Sec. IV, Fig. 5):
// the Semantic Query Parser (SQP) of the CroSSE architecture. A SESQL query
// is a SQL query whose WHERE conditions may carry `${ cond : id }` tags
// (Remark 4.1) followed by an ENRICH clause listing enrichment operations.
//
// Parsing follows exactly the three steps of Remark 4.1: (i) condition tags
// are recognised by a dedicated scanner, (ii) each tagged condition's syntax
// tree is recorded under its identifier, and (iii) the query is "cleaned" by
// removing the non-SQL identification syntax so a legal SQL query remains,
// which is then parsed with the ordinary SQL parser.
//
// The six enrichment clauses of Fig. 5 are supported. The paper's BNF lists
// REPLACECONSTANT/REPLACEVARIABLE with two parameters while its running
// examples (4.5, 4.6) use three (condition id, attribute/constant,
// property); we follow the examples, which are the normative usage.
package sesql

import (
	"fmt"
	"strings"

	"crosse/internal/sqlparser"
)

// Kind enumerates the six enrichment strategies.
type Kind int

// Enrichment kinds (Sec. IV-A.1 through IV-A.6).
const (
	SchemaExtension Kind = iota
	SchemaReplacement
	BoolSchemaExtension
	BoolSchemaReplacement
	ReplaceConstant
	ReplaceVariable
)

// String returns the SESQL clause name.
func (k Kind) String() string {
	switch k {
	case SchemaExtension:
		return "SCHEMAEXTENSION"
	case SchemaReplacement:
		return "SCHEMAREPLACEMENT"
	case BoolSchemaExtension:
		return "BOOLSCHEMAEXTENSION"
	case BoolSchemaReplacement:
		return "BOOLSCHEMAREPLACEMENT"
	case ReplaceConstant:
		return "REPLACECONSTANT"
	case ReplaceVariable:
		return "REPLACEVARIABLE"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Enrichment is one parsed enrichment clause.
type Enrichment struct {
	Kind Kind
	// CondID identifies the tagged WHERE condition (ReplaceConstant /
	// ReplaceVariable only).
	CondID string
	// Attr is the relational attribute to enrich — possibly qualified
	// (Elecond2.elem_name). For ReplaceConstant it is the non-relational
	// constant appearing in the tagged condition (e.g. HazardousWaste).
	Attr string
	// Property is the ontological property driving the enrichment, or the
	// name of a stored SPARQL query.
	Property string
	// Concept is the target concept for the boolean variants.
	Concept string
}

// SESQL renders the clause back in SESQL syntax.
func (e Enrichment) SESQL() string {
	switch e.Kind {
	case BoolSchemaExtension, BoolSchemaReplacement:
		return fmt.Sprintf("%s(%s, %s, %s)", e.Kind, e.Attr, e.Property, e.Concept)
	case ReplaceConstant, ReplaceVariable:
		return fmt.Sprintf("%s(%s, %s, %s)", e.Kind, e.CondID, e.Attr, e.Property)
	default:
		return fmt.Sprintf("%s(%s, %s)", e.Kind, e.Attr, e.Property)
	}
}

// CondTag is one `${ cond : id }` tagged condition.
type CondTag struct {
	ID   string
	Text string         // the raw condition text inside the tag
	Expr sqlparser.Expr // its parsed syntax tree
}

// Query is a fully parsed SESQL query.
type Query struct {
	// SQL is the cleaned SQL text (tags stripped, ENRICH clause removed).
	SQL string
	// Select is the parsed cleaned query.
	Select *sqlparser.Select
	// Conds maps condition ids to their tagged conditions.
	Conds map[string]*CondTag
	// Enrichments lists the requested enrichment operations in order.
	Enrichments []Enrichment
}

// Parse parses a SESQL query. Plain SQL (no ENRICH clause) parses to a
// Query with no enrichments, so SESQL is a strict superset of the engine's
// SQL dialect.
func Parse(src string) (*Query, error) {
	cleaned, tags, err := ScanTags(src)
	if err != nil {
		return nil, err
	}
	sqlPart, enrichPart, err := splitEnrich(cleaned)
	if err != nil {
		return nil, err
	}

	sel, err := sqlparser.ParseSelect(sqlPart)
	if err != nil {
		return nil, fmt.Errorf("sesql: in SQL part: %w", err)
	}

	q := &Query{SQL: sqlPart, Select: sel, Conds: map[string]*CondTag{}}
	for _, tag := range tags {
		if _, dup := q.Conds[tag.ID]; dup {
			return nil, fmt.Errorf("sesql: duplicate condition id %q", tag.ID)
		}
		q.Conds[tag.ID] = tag
	}

	// Every tagged condition must be locatable in the parsed WHERE clause.
	for _, tag := range tags {
		if sel.Where == nil || !ContainsSubtree(sel.Where, tag.Expr) {
			return nil, fmt.Errorf("sesql: tagged condition %q does not match a WHERE subexpression", tag.ID)
		}
	}

	if enrichPart != "" {
		enr, err := parseEnrichSpec(enrichPart)
		if err != nil {
			return nil, err
		}
		q.Enrichments = enr
	}

	// Cross-validate: WHERE-affecting enrichments must reference known ids;
	// others must not carry one.
	for _, e := range q.Enrichments {
		switch e.Kind {
		case ReplaceConstant, ReplaceVariable:
			if _, ok := q.Conds[e.CondID]; !ok {
				return nil, fmt.Errorf("sesql: %s references unknown condition id %q", e.Kind, e.CondID)
			}
		}
	}
	return q, nil
}

// ScanTags implements the dedicated scanner of Remark 4.1: it recognises
// `${ cond : id }` constructs (characters standard SQL would reject at that
// point), records each condition's text and syntax tree, and returns the
// cleaned text with each tag replaced by its bare condition.
func ScanTags(src string) (string, []*CondTag, error) {
	var out strings.Builder
	var tags []*CondTag
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\'':
			// Copy string literals verbatim; tags inside strings are text.
			j := i + 1
			for j < len(src) {
				if src[j] == '\'' {
					if j+1 < len(src) && src[j+1] == '\'' {
						j += 2
						continue
					}
					break
				}
				j++
			}
			if j >= len(src) {
				return "", nil, fmt.Errorf("sesql: unterminated string literal")
			}
			out.WriteString(src[i : j+1])
			i = j + 1
		case c == '$' && i+1 < len(src) && src[i+1] == '{':
			body, end, err := scanTagBody(src, i+2)
			if err != nil {
				return "", nil, err
			}
			condText, id, err := splitTag(body)
			if err != nil {
				return "", nil, err
			}
			expr, err := sqlparser.ParseExpr(condText)
			if err != nil {
				return "", nil, fmt.Errorf("sesql: condition %q: %w", id, err)
			}
			tags = append(tags, &CondTag{ID: id, Text: strings.TrimSpace(condText), Expr: expr})
			out.WriteString(condText)
			i = end
		default:
			out.WriteByte(c)
			i++
		}
	}
	return out.String(), tags, nil
}

// scanTagBody consumes from just after "${" to the matching "}", honouring
// string literals. It returns the body and the index after the "}".
func scanTagBody(src string, start int) (string, int, error) {
	depth := 1 // supports nested braces inside the condition, if ever
	for j := start; j < len(src); j++ {
		switch src[j] {
		case '\'':
			k := j + 1
			for k < len(src) {
				if src[k] == '\'' {
					if k+1 < len(src) && src[k+1] == '\'' {
						k += 2
						continue
					}
					break
				}
				k++
			}
			if k >= len(src) {
				return "", 0, fmt.Errorf("sesql: unterminated string inside condition tag")
			}
			j = k
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				return src[start:j], j + 1, nil
			}
		}
	}
	return "", 0, fmt.Errorf("sesql: unterminated condition tag ${...}")
}

// splitTag splits "cond : id" at the last top-level colon.
func splitTag(body string) (string, string, error) {
	colon := -1
	for j := 0; j < len(body); j++ {
		switch body[j] {
		case '\'':
			k := j + 1
			for k < len(body) {
				if body[k] == '\'' {
					if k+1 < len(body) && body[k+1] == '\'' {
						k += 2
						continue
					}
					break
				}
				k++
			}
			j = k
		case ':':
			colon = j
		}
	}
	if colon < 0 {
		return "", "", fmt.Errorf("sesql: condition tag missing ':id'")
	}
	cond := strings.TrimSpace(body[:colon])
	id := strings.TrimSpace(body[colon+1:])
	if cond == "" || id == "" {
		return "", "", fmt.Errorf("sesql: malformed condition tag %q", body)
	}
	for _, r := range id {
		if !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
			return "", "", fmt.Errorf("sesql: invalid condition id %q", id)
		}
	}
	return cond, id, nil
}

// splitEnrich splits cleaned SESQL text at the top-level ENRICH keyword.
func splitEnrich(src string) (string, string, error) {
	lex := sqlparser.NewLexer(src)
	for {
		tok, err := lex.Next()
		if err != nil {
			return "", "", err
		}
		if tok.Kind == sqlparser.TEOF {
			return strings.TrimSpace(src), "", nil
		}
		if tok.Kind == sqlparser.TIdent && !tok.Quoted && strings.EqualFold(tok.Text, "ENRICH") {
			return strings.TrimSpace(src[:tok.Pos]), strings.TrimSpace(src[tok.Pos:]), nil
		}
	}
}

// parseEnrichSpec parses the text after ENRICH: a sequence of enrichment
// clauses per the Fig. 5 grammar.
func parseEnrichSpec(src string) ([]Enrichment, error) {
	// Tokenise with the SQL lexer: clause names are identifiers, argument
	// lists are parenthesised identifier/string tokens.
	rest := strings.TrimSpace(src)
	if !strings.HasPrefix(strings.ToUpper(rest), "ENRICH") {
		return nil, fmt.Errorf("sesql: enrichment spec must start with ENRICH")
	}
	rest = strings.TrimSpace(rest[len("ENRICH"):])
	if rest == "" {
		return nil, fmt.Errorf("sesql: empty ENRICH clause")
	}

	var out []Enrichment
	for rest != "" {
		e, remainder, err := parseOneClause(rest)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		rest = strings.TrimSpace(remainder)
	}
	return out, nil
}

// clauseNames maps (normalised) clause spellings to kinds. The paper writes
// both SCHEMAEXTENSION and SCHEMA EXTENSION; both are accepted.
var clauseNames = map[string]Kind{
	"SCHEMAEXTENSION":       SchemaExtension,
	"SCHEMAREPLACEMENT":     SchemaReplacement,
	"BOOLSCHEMAEXTENSION":   BoolSchemaExtension,
	"BOOLSCHEMAREPLACEMENT": BoolSchemaReplacement,
	"REPLACECONSTANT":       ReplaceConstant,
	"REPLACEVARIABLE":       ReplaceVariable,
}

func parseOneClause(src string) (Enrichment, string, error) {
	open := strings.IndexByte(src, '(')
	if open < 0 {
		return Enrichment{}, "", fmt.Errorf("sesql: expected '(' in enrichment clause near %q", abbrev(src))
	}
	name := strings.ToUpper(strings.Join(strings.Fields(src[:open]), ""))
	kind, ok := clauseNames[name]
	if !ok {
		return Enrichment{}, "", fmt.Errorf("sesql: unknown enrichment clause %q", strings.TrimSpace(src[:open]))
	}
	close := strings.IndexByte(src[open:], ')')
	if close < 0 {
		return Enrichment{}, "", fmt.Errorf("sesql: missing ')' in %s clause", kind)
	}
	argText := src[open+1 : open+close]
	remainder := src[open+close+1:]

	var args []string
	for _, a := range strings.Split(argText, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return Enrichment{}, "", fmt.Errorf("sesql: empty argument in %s clause", kind)
		}
		args = append(args, a)
	}

	e := Enrichment{Kind: kind}
	switch kind {
	case SchemaExtension, SchemaReplacement:
		if len(args) != 2 {
			return Enrichment{}, "", fmt.Errorf("sesql: %s expects (attr, property), got %d args", kind, len(args))
		}
		e.Attr, e.Property = args[0], args[1]
	case BoolSchemaExtension, BoolSchemaReplacement:
		if len(args) != 3 {
			return Enrichment{}, "", fmt.Errorf("sesql: %s expects (attr, property, concept), got %d args", kind, len(args))
		}
		e.Attr, e.Property, e.Concept = args[0], args[1], args[2]
	case ReplaceConstant, ReplaceVariable:
		if len(args) != 3 {
			return Enrichment{}, "", fmt.Errorf("sesql: %s expects (condID, attr, property), got %d args", kind, len(args))
		}
		e.CondID, e.Attr, e.Property = args[0], args[1], args[2]
	}
	return e, remainder, nil
}

func abbrev(s string) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) > 40 {
		return s[:37] + "..."
	}
	return s
}

// --- WHERE-subtree location and rewriting ---

// ContainsSubtree reports whether the expression tree contains a subtree
// that renders to the same SQL as needle (the printer is deterministic and
// fully parenthesised, so textual equality is structural equality).
func ContainsSubtree(hay, needle sqlparser.Expr) bool {
	found := false
	target := needle.SQL()
	walkExpr(hay, func(e sqlparser.Expr) {
		if e.SQL() == target {
			found = true
		}
	})
	return found
}

// ReplaceSubtree returns a copy of hay with every subtree structurally equal
// to needle replaced by repl, plus the replacement count.
func ReplaceSubtree(hay, needle, repl sqlparser.Expr) (sqlparser.Expr, int) {
	target := needle.SQL()
	n := 0
	var rewrite func(e sqlparser.Expr) sqlparser.Expr
	rewrite = func(e sqlparser.Expr) sqlparser.Expr {
		if e == nil {
			return nil
		}
		if e.SQL() == target {
			n++
			return repl
		}
		switch ex := e.(type) {
		case *sqlparser.BinExpr:
			return &sqlparser.BinExpr{Op: ex.Op, L: rewrite(ex.L), R: rewrite(ex.R)}
		case *sqlparser.UnaryExpr:
			return &sqlparser.UnaryExpr{Op: ex.Op, E: rewrite(ex.E)}
		case *sqlparser.IsNull:
			return &sqlparser.IsNull{E: rewrite(ex.E), Not: ex.Not}
		case *sqlparser.InList:
			list := make([]sqlparser.Expr, len(ex.List))
			for i, le := range ex.List {
				list[i] = rewrite(le)
			}
			return &sqlparser.InList{E: rewrite(ex.E), Not: ex.Not, List: list}
		case *sqlparser.Between:
			return &sqlparser.Between{E: rewrite(ex.E), Not: ex.Not, Lo: rewrite(ex.Lo), Hi: rewrite(ex.Hi)}
		case *sqlparser.FuncCall:
			args := make([]sqlparser.Expr, len(ex.Args))
			for i, a := range ex.Args {
				args[i] = rewrite(a)
			}
			return &sqlparser.FuncCall{Name: ex.Name, Star: ex.Star, Distinct: ex.Distinct, Args: args}
		case *sqlparser.CaseExpr:
			ce := &sqlparser.CaseExpr{}
			if ex.Operand != nil {
				ce.Operand = rewrite(ex.Operand)
			}
			for _, w := range ex.Whens {
				ce.Whens = append(ce.Whens, sqlparser.WhenClause{Cond: rewrite(w.Cond), Then: rewrite(w.Then)})
			}
			if ex.Else != nil {
				ce.Else = rewrite(ex.Else)
			}
			return ce
		default:
			return e
		}
	}
	return rewrite(hay), n
}

func walkExpr(e sqlparser.Expr, fn func(sqlparser.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch ex := e.(type) {
	case *sqlparser.BinExpr:
		walkExpr(ex.L, fn)
		walkExpr(ex.R, fn)
	case *sqlparser.UnaryExpr:
		walkExpr(ex.E, fn)
	case *sqlparser.IsNull:
		walkExpr(ex.E, fn)
	case *sqlparser.InList:
		walkExpr(ex.E, fn)
		for _, le := range ex.List {
			walkExpr(le, fn)
		}
	case *sqlparser.Between:
		walkExpr(ex.E, fn)
		walkExpr(ex.Lo, fn)
		walkExpr(ex.Hi, fn)
	case *sqlparser.FuncCall:
		for _, a := range ex.Args {
			walkExpr(a, fn)
		}
	case *sqlparser.CaseExpr:
		if ex.Operand != nil {
			walkExpr(ex.Operand, fn)
		}
		for _, w := range ex.Whens {
			walkExpr(w.Cond, fn)
			walkExpr(w.Then, fn)
		}
		if ex.Else != nil {
			walkExpr(ex.Else, fn)
		}
	}
}
