package sesql

import (
	"math/rand"
	"testing"
)

// TestScanTagsNeverPanics feeds the scanner random byte soup: it may reject
// the input but must never panic or loop — this is the first parser that
// touches untrusted query text in the REST API.
func TestScanTagsNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	alphabet := []byte(`SELECT FROM WHERE ENRICH ${}:'"(),.=<>abz019 _` + "\n\t")
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(120)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[rng.Intn(len(alphabet))]
		}
		src := string(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _, _ = ScanTags(src)
			_, _ = Parse(src)
		}()
	}
}

// TestParseNeverPanicsOnTruncations truncates a valid SESQL query at every
// byte offset; all prefixes must parse or fail cleanly.
func TestParseNeverPanicsOnTruncations(t *testing.T) {
	const full = `SELECT Elecond1.landfill_name AS l_name1, Elecond1.elem_name
FROM elem_contained AS Elecond1, elem_contained AS Elecond2
WHERE ${ Elecond1.elem_name <> Elecond2.elem_name:cond1} AND Elecond1.elem_name = Elecond2.elem_name
ENRICH REPLACEVARIABLE(cond1, Elecond2.elem_name, oreAssemblage)`
	for i := 0; i <= len(full); i++ {
		src := full[:i]
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at truncation %d (%q): %v", i, src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}
