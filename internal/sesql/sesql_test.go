package sesql

import (
	"strings"
	"testing"

	"crosse/internal/sqlparser"
)

// The six paper examples, verbatim modulo whitespace.
const (
	ex41 = `SELECT elem_name, landfill_name
FROM elem_contained
WHERE landfill_name = 'a'
ENRICH
SCHEMAEXTENSION( elem_name, dangerLevel)`

	ex42 = `SELECT name, city
FROM landfill
ENRICH
SCHEMAREPLACEMENT(city, inCountry)`

	ex43 = `SELECT elem_name
FROM elem_contained
WHERE landfill_name = 'a'
ENRICH
BOOLSCHEMAEXTENSION( elem_name, isA, HazardousWaste)`

	ex44 = `SELECT name, city
FROM landfill
ENRICH
BOOLSCHEMAREPLACEMENT(city, inCountry, Italy)`

	ex45 = `SELECT landfill_name
FROM elem_contained
WHERE ${elem_name = HazardousWaste:cond1}
ENRICH
REPLACECONSTANT(cond1, HazardousWaste, dangerQuery)`

	ex46 = `SELECT Elecond1.landfill_name AS l_name1,
 Elecond2.landfill_name AS l_name2,
 Elecond1.elem_name
FROM elem_contained AS Elecond1,
 elem_contained AS Elecond2
WHERE ${ Elecond1.elem_name <> Elecond2.elem_name:cond1} AND
 Elecond1.elem_name = Elecond2.elem_name
ENRICH
REPLACEVARIABLE(cond1, Elecond2.elem_name, oreAssemblage)`
)

func TestParseExample41(t *testing.T) {
	q, err := Parse(ex41)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Enrichments) != 1 {
		t.Fatalf("enrichments = %d", len(q.Enrichments))
	}
	e := q.Enrichments[0]
	if e.Kind != SchemaExtension || e.Attr != "elem_name" || e.Property != "dangerLevel" {
		t.Errorf("%+v", e)
	}
	if q.Select == nil || q.Select.From[0].Table != "elem_contained" {
		t.Errorf("SQL part not parsed: %q", q.SQL)
	}
	if strings.Contains(q.SQL, "ENRICH") {
		t.Error("cleaned SQL must not contain ENRICH")
	}
}

func TestParseExample42(t *testing.T) {
	q, err := Parse(ex42)
	if err != nil {
		t.Fatal(err)
	}
	e := q.Enrichments[0]
	if e.Kind != SchemaReplacement || e.Attr != "city" || e.Property != "inCountry" {
		t.Errorf("%+v", e)
	}
}

func TestParseExample43(t *testing.T) {
	q, err := Parse(ex43)
	if err != nil {
		t.Fatal(err)
	}
	e := q.Enrichments[0]
	if e.Kind != BoolSchemaExtension || e.Attr != "elem_name" || e.Property != "isA" || e.Concept != "HazardousWaste" {
		t.Errorf("%+v", e)
	}
}

func TestParseExample44(t *testing.T) {
	q, err := Parse(ex44)
	if err != nil {
		t.Fatal(err)
	}
	e := q.Enrichments[0]
	if e.Kind != BoolSchemaReplacement || e.Concept != "Italy" {
		t.Errorf("%+v", e)
	}
}

func TestParseExample45(t *testing.T) {
	q, err := Parse(ex45)
	if err != nil {
		t.Fatal(err)
	}
	e := q.Enrichments[0]
	if e.Kind != ReplaceConstant || e.CondID != "cond1" || e.Attr != "HazardousWaste" || e.Property != "dangerQuery" {
		t.Errorf("%+v", e)
	}
	tag, ok := q.Conds["cond1"]
	if !ok {
		t.Fatal("cond1 not recorded")
	}
	if tag.Text != "elem_name = HazardousWaste" {
		t.Errorf("tag text = %q", tag.Text)
	}
	// Cleaned SQL parses and retains the bare condition.
	if !strings.Contains(q.SQL, "elem_name = HazardousWaste") || strings.Contains(q.SQL, "${") {
		t.Errorf("cleaned SQL: %q", q.SQL)
	}
}

func TestParseExample46(t *testing.T) {
	q, err := Parse(ex46)
	if err != nil {
		t.Fatal(err)
	}
	e := q.Enrichments[0]
	if e.Kind != ReplaceVariable || e.CondID != "cond1" || e.Attr != "Elecond2.elem_name" || e.Property != "oreAssemblage" {
		t.Errorf("%+v", e)
	}
	tag := q.Conds["cond1"]
	if tag.Expr.SQL() != "(Elecond1.elem_name <> Elecond2.elem_name)" {
		t.Errorf("tag expr = %s", tag.Expr.SQL())
	}
	// The tagged subtree is locatable in the parsed WHERE.
	if !ContainsSubtree(q.Select.Where, tag.Expr) {
		t.Error("tagged condition not found in WHERE tree")
	}
}

func TestPlainSQLPassesThrough(t *testing.T) {
	q, err := Parse(`SELECT a FROM t WHERE a > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Enrichments) != 0 || len(q.Conds) != 0 {
		t.Errorf("plain SQL must have no enrichment: %+v", q)
	}
}

func TestMultipleEnrichments(t *testing.T) {
	q, err := Parse(`SELECT elem_name, landfill_name FROM elem_contained
ENRICH
SCHEMAEXTENSION(elem_name, dangerLevel)
BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)
SCHEMAREPLACEMENT(landfill_name, inCity)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Enrichments) != 3 {
		t.Fatalf("enrichments = %d", len(q.Enrichments))
	}
	kinds := []Kind{q.Enrichments[0].Kind, q.Enrichments[1].Kind, q.Enrichments[2].Kind}
	want := []Kind{SchemaExtension, BoolSchemaExtension, SchemaReplacement}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("clause %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestSchemaExtensionWithSpaceSpelling(t *testing.T) {
	// The paper's query pattern sketch writes "SCHEMA EXTENSION(...)".
	q, err := Parse(`SELECT a FROM t ENRICH SCHEMA EXTENSION(a, p) SCHEMA REPLACEMENT(a, q)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Enrichments[0].Kind != SchemaExtension || q.Enrichments[1].Kind != SchemaReplacement {
		t.Errorf("%+v", q.Enrichments)
	}
}

func TestScanTagsCleaning(t *testing.T) {
	cleaned, tags, err := ScanTags(`SELECT a FROM t WHERE ${a = 1:c1} AND ${b = 'x }':c2}`)
	if err != nil {
		t.Fatal(err)
	}
	if cleaned != `SELECT a FROM t WHERE a = 1 AND b = 'x }'` {
		t.Errorf("cleaned = %q", cleaned)
	}
	if len(tags) != 2 || tags[0].ID != "c1" || tags[1].ID != "c2" {
		t.Errorf("tags = %+v", tags)
	}
	// Tag text inside a string literal is not a tag.
	cleaned2, tags2, err := ScanTags(`SELECT '${not a tag:x}' FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if len(tags2) != 0 || !strings.Contains(cleaned2, "${not a tag:x}") {
		t.Errorf("string literal scanned as tag: %q %v", cleaned2, tags2)
	}
}

func TestScanTagErrors(t *testing.T) {
	bad := []string{
		`SELECT a FROM t WHERE ${a = 1`,           // unterminated tag
		`SELECT a FROM t WHERE ${a = 1}`,          // missing :id
		`SELECT a FROM t WHERE ${:c}`,             // empty condition
		`SELECT a FROM t WHERE ${a = 1: }`,        // empty id
		`SELECT a FROM t WHERE ${a = 1:my id}`,    // invalid id
		`SELECT a FROM t WHERE ${a = :c1}`,        // unparseable condition
		`SELECT a FROM t WHERE 'unterminated ${x`, // unterminated string
	}
	for _, src := range bad {
		if _, _, err := ScanTags(src); err == nil {
			t.Errorf("ScanTags(%q) should fail", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`SELECT a FROM t ENRICH`,
		`SELECT a FROM t ENRICH FROBNICATE(a, b)`,
		`SELECT a FROM t ENRICH SCHEMAEXTENSION(a)`,
		`SELECT a FROM t ENRICH SCHEMAEXTENSION(a, b, c)`,
		`SELECT a FROM t ENRICH BOOLSCHEMAEXTENSION(a, b)`,
		`SELECT a FROM t ENRICH REPLACECONSTANT(c1, a)`,
		`SELECT a FROM t ENRICH SCHEMAEXTENSION(a, b`,
		`SELECT a FROM t ENRICH SCHEMAEXTENSION a, b)`,
		`SELECT a FROM t ENRICH SCHEMAEXTENSION(, b)`,
		`SELECT a FROM t ENRICH REPLACECONSTANT(nope, a, p)`,                             // unknown cond id
		`SELECT a FROM t WHERE ${a=1:c1} AND ${b=2:c1} ENRICH REPLACECONSTANT(c1, a, p)`, // dup id
		`INSERT INTO t VALUES (1) ENRICH SCHEMAEXTENSION(a, b)`,                          // not a SELECT
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestReplaceSubtree(t *testing.T) {
	where, err := sqlparser.ParseExpr(`a = 1 AND (b = 2 OR a = 1)`)
	if err != nil {
		t.Fatal(err)
	}
	needle, _ := sqlparser.ParseExpr(`a = 1`)
	repl, _ := sqlparser.ParseExpr(`TRUE`)
	out, n := ReplaceSubtree(where, needle, repl)
	if n != 2 {
		t.Errorf("replaced %d, want 2", n)
	}
	if strings.Contains(out.SQL(), "a = 1") {
		t.Errorf("replacement incomplete: %s", out.SQL())
	}
	// Original tree untouched.
	if !strings.Contains(where.SQL(), "(a = 1)") {
		t.Error("ReplaceSubtree must not mutate its input")
	}
}

func TestReplaceSubtreeInComplexShapes(t *testing.T) {
	where, _ := sqlparser.ParseExpr(
		`x IN (1, 2) AND CASE WHEN y = 3 THEN 1 ELSE 0 END = 1 AND z BETWEEN 1 AND (y = 3)`)
	needle, _ := sqlparser.ParseExpr(`y = 3`)
	repl, _ := sqlparser.ParseExpr(`FALSE`)
	out, n := ReplaceSubtree(where, needle, repl)
	if n != 2 {
		t.Errorf("replaced %d, want 2", n)
	}
	if strings.Contains(out.SQL(), "y = 3") {
		t.Errorf("leftover: %s", out.SQL())
	}
}

func TestEnrichmentSESQLRendering(t *testing.T) {
	cases := []struct {
		e    Enrichment
		want string
	}{
		{Enrichment{Kind: SchemaExtension, Attr: "a", Property: "p"}, "SCHEMAEXTENSION(a, p)"},
		{Enrichment{Kind: BoolSchemaReplacement, Attr: "a", Property: "p", Concept: "C"}, "BOOLSCHEMAREPLACEMENT(a, p, C)"},
		{Enrichment{Kind: ReplaceVariable, CondID: "c1", Attr: "a", Property: "p"}, "REPLACEVARIABLE(c1, a, p)"},
	}
	for _, c := range cases {
		if got := c.e.SESQL(); got != c.want {
			t.Errorf("SESQL() = %q, want %q", got, c.want)
		}
	}
}

func TestTagMustMatchWhereSubtree(t *testing.T) {
	// A tag whose condition is split across operator precedence is not a
	// complete subtree and must be rejected.
	_, err := Parse(`SELECT a FROM t WHERE ${a = 1 OR b:c1} = 2 ENRICH REPLACECONSTANT(c1, a, p)`)
	if err == nil {
		t.Error("non-subtree tag should be rejected")
	}
}
