package sesql

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"crosse/internal/sqlparser"
	"crosse/internal/sqlval"
)

// randCondition generates a random, syntactically valid SQL condition.
func randCondition(rng *rand.Rand, depth int) string {
	if depth <= 0 || rng.Intn(3) == 0 {
		cols := []string{"a", "b", "t.c", "elem_name"}
		ops := []string{"=", "<>", "<", ">=", "LIKE"}
		rhs := []string{"'x'", "42", "3.5", "other_col", "'it''s'"}
		return fmt.Sprintf("%s %s %s",
			cols[rng.Intn(len(cols))], ops[rng.Intn(len(ops))], rhs[rng.Intn(len(rhs))])
	}
	switch rng.Intn(3) {
	case 0:
		return "(" + randCondition(rng, depth-1) + " AND " + randCondition(rng, depth-1) + ")"
	case 1:
		return "(" + randCondition(rng, depth-1) + " OR " + randCondition(rng, depth-1) + ")"
	default:
		return "NOT (" + randCondition(rng, depth-1) + ")"
	}
}

// Property: for random conditions, wrapping in a ${...:id} tag and scanning
// yields (a) the cleaned text with the tag removed verbatim, and (b) a
// parsed condition equal (as SQL) to parsing the condition directly.
func TestScanTagsCleansRandomConditions(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 200; trial++ {
		cond := randCondition(rng, 3)
		src := fmt.Sprintf("SELECT a FROM t WHERE ${%s:c1} AND b = 1", cond)
		cleaned, tags, err := ScanTags(src)
		if err != nil {
			t.Fatalf("trial %d: %q: %v", trial, src, err)
		}
		wantCleaned := fmt.Sprintf("SELECT a FROM t WHERE %s AND b = 1", cond)
		if cleaned != wantCleaned {
			t.Fatalf("trial %d: cleaned %q, want %q", trial, cleaned, wantCleaned)
		}
		if len(tags) != 1 || tags[0].ID != "c1" {
			t.Fatalf("trial %d: tags %+v", trial, tags)
		}
		direct, err := sqlparser.ParseExpr(cond)
		if err != nil {
			t.Fatalf("trial %d: direct parse: %v", trial, err)
		}
		if tags[0].Expr.SQL() != direct.SQL() {
			t.Fatalf("trial %d: tag expr %s != direct %s", trial, tags[0].Expr.SQL(), direct.SQL())
		}
	}
}

// Property: a full SESQL parse of a query with a random tagged condition
// locates the condition as a WHERE subtree, and replacing it with TRUE
// removes it entirely.
func TestRandomTaggedConditionsLocatable(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		cond := randCondition(rng, 2)
		src := fmt.Sprintf(`SELECT a FROM t WHERE ${%s:cc} AND a > 0
ENRICH REPLACECONSTANT(cc, other_col, someProp)`, cond)
		q, err := Parse(src)
		if err != nil {
			// Conditions not mentioning other_col make REPLACECONSTANT
			// parse fine; parse errors here mean a scanner bug.
			t.Fatalf("trial %d: %q: %v", trial, src, err)
		}
		tag := q.Conds["cc"]
		if !ContainsSubtree(q.Select.Where, tag.Expr) {
			t.Fatalf("trial %d: tag not locatable in %s", trial, q.Select.Where.SQL())
		}
		trueLit := &sqlparser.Literal{Val: sqlval.NewBool(true)}
		replaced, n := ReplaceSubtree(q.Select.Where, tag.Expr, trueLit)
		if n < 1 {
			t.Fatalf("trial %d: replace count %d", trial, n)
		}
		if strings.Contains(replaced.SQL(), tag.Expr.SQL()) {
			t.Fatalf("trial %d: condition survives replacement: %s", trial, replaced.SQL())
		}
	}
}
