package sqldb

import (
	"fmt"
	"math/rand"
	"testing"

	"crosse/internal/sqlval"
)

// scanEqRows collects ScanEq results as rendered strings.
func scanEqRows(t *testing.T, tab *Table, col string, v sqlval.Value) []string {
	t.Helper()
	var out []string
	err := tab.ScanEq(col, v, func(row []sqlval.Value) bool {
		s := ""
		for i, c := range row {
			if i > 0 {
				s += "|"
			}
			s += c.String()
		}
		out = append(out, s)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// filterScanRows is the index-free reference: full scan + Equal filter.
func filterScanRows(t *testing.T, tab *Table, col int, v sqlval.Value) []string {
	t.Helper()
	var out []string
	err := tab.Scan(func(row []sqlval.Value) bool {
		if row[col].Equal(v) {
			s := ""
			for i, c := range row {
				if i > 0 {
					s += "|"
				}
				s += c.String()
			}
			out = append(out, s)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func joinLines(ss []string) string {
	out := ""
	for _, s := range ss {
		out += s + "\n"
	}
	return out
}

// Property: after any interleaving of inserts, DeleteWhere and
// UpdateWhere (including primary-key updates, which take the rebuild
// fallback), every index answers ScanEq exactly like a filtered scan and
// in the same (position) order.
func TestIndexesStayConsistentUnderDML(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		tab, err := NewTable("t", Schema{
			{Name: "id", Type: sqlval.TypeInt, PrimaryKey: true},
			{Name: "k", Type: sqlval.TypeString},
			{Name: "n", Type: sqlval.TypeInt},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := tab.CreateIndex("k"); err != nil {
			t.Fatal(err)
		}
		nextID := 0
		insert := func(n int) {
			for i := 0; i < n; i++ {
				row := []sqlval.Value{
					sqlval.NewInt(int64(nextID)),
					sqlval.NewString(fmt.Sprintf("k%d", rng.Intn(5))),
					sqlval.NewInt(int64(rng.Intn(20))),
				}
				nextID++
				if err := tab.Insert(row); err != nil {
					t.Fatal(err)
				}
			}
		}
		insert(30)

		for op := 0; op < 15; op++ {
			switch rng.Intn(4) {
			case 0:
				insert(rng.Intn(5))
			case 1: // delete a random slice of the value space
				cut := int64(rng.Intn(20))
				if _, err := tab.DeleteWhere(func(row []sqlval.Value) (bool, error) {
					return row[2].Int() == cut, nil
				}); err != nil {
					t.Fatal(err)
				}
			case 2: // non-PK update: incremental repointing
				from := fmt.Sprintf("k%d", rng.Intn(5))
				to := fmt.Sprintf("k%d", rng.Intn(5))
				if _, err := tab.UpdateWhere(
					func(row []sqlval.Value) (bool, error) { return !row[1].IsNull() && row[1].Str() == from, nil },
					func(row []sqlval.Value) ([]sqlval.Value, error) {
						out := append([]sqlval.Value(nil), row...)
						out[1] = sqlval.NewString(to)
						out[2] = sqlval.NewInt(row[2].Int() + 1)
						return out, nil
					}); err != nil {
					t.Fatal(err)
				}
			case 3: // PK update: rebuild fallback
				if _, err := tab.UpdateWhere(
					func(row []sqlval.Value) (bool, error) { return row[0].Int()%7 == 3, nil },
					func(row []sqlval.Value) ([]sqlval.Value, error) {
						out := append([]sqlval.Value(nil), row...)
						out[0] = sqlval.NewInt(row[0].Int() + 1000)
						return out, nil
					}); err != nil {
					t.Fatal(err)
				}
			}

			// Cross-check every indexed column over the live value domain.
			probes := []struct {
				col  string
				ci   int
				vals []sqlval.Value
			}{
				{"k", 1, nil},
				{"id", 0, nil},
			}
			for i := 0; i < 6; i++ {
				probes[0].vals = append(probes[0].vals, sqlval.NewString(fmt.Sprintf("k%d", i)))
			}
			for i := 0; i < nextID+2; i += 3 {
				probes[1].vals = append(probes[1].vals, sqlval.NewInt(int64(i)))
			}
			for _, p := range probes {
				for _, v := range p.vals {
					got := scanEqRows(t, tab, p.col, v)
					want := filterScanRows(t, tab, p.ci, v)
					if joinLines(got) != joinLines(want) {
						t.Fatalf("trial %d op %d: ScanEq(%s=%v) = %v, scan says %v",
							trial, op, p.col, v, got, want)
					}
				}
			}
		}
	}
}

// DeleteWhere with a failing predicate must leave the table consistent
// (the prefix compaction is completed and indexes repaired).
func TestDeleteWherePredicateErrorKeepsConsistency(t *testing.T) {
	tab, err := NewTable("t", Schema{{Name: "n", Type: sqlval.TypeInt}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.CreateIndex("n"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := tab.Insert([]sqlval.Value{sqlval.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	boom := fmt.Errorf("boom")
	_, err = tab.DeleteWhere(func(row []sqlval.Value) (bool, error) {
		if row[0].Int() == 5 {
			return false, boom
		}
		return row[0].Int()%2 == 0, nil
	})
	if err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	// Rows 0,2,4 were deleted before the failure; the rest must all be
	// reachable through the index.
	for i := 0; i < 10; i++ {
		got := scanEqRows(t, tab, "n", sqlval.NewInt(int64(i)))
		want := filterScanRows(t, tab, 0, sqlval.NewInt(int64(i)))
		if joinLines(got) != joinLines(want) {
			t.Fatalf("n=%d: ScanEq %v != scan %v", i, got, want)
		}
	}
}

// The StableRowScanner contract: rows handed out by Scan are never
// mutated in place — an update replaces the whole row — so a consumer
// that retained a scanned row (zero-copy materialisation in sqlexec's
// parallel path) keeps seeing the pre-update values, while the index
// repoints to the new ones.
func TestUpdateWhereReplacesRowsWholesale(t *testing.T) {
	tab, err := NewTable("t", Schema{{Name: "k", Type: sqlval.TypeString}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.CreateIndex("k"); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert([]sqlval.Value{sqlval.NewString("old")}); err != nil {
		t.Fatal(err)
	}
	var retained [][]sqlval.Value
	if err := tab.Scan(func(row []sqlval.Value) bool {
		retained = append(retained, row)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.UpdateWhere(
		func([]sqlval.Value) (bool, error) { return true, nil },
		func(row []sqlval.Value) ([]sqlval.Value, error) {
			out := append([]sqlval.Value(nil), row...)
			out[0] = sqlval.NewString("new")
			return out, nil
		}); err != nil {
		t.Fatal(err)
	}
	if got := scanEqRows(t, tab, "k", sqlval.NewString("new")); len(got) != 1 {
		t.Fatalf("index missed the update: %v", got)
	}
	if got := scanEqRows(t, tab, "k", sqlval.NewString("old")); len(got) != 0 {
		t.Fatalf("stale index entry survived: %v", got)
	}
	if len(retained) != 1 || retained[0][0].String() != "old" {
		t.Fatalf("retained scan row mutated in place: %v", retained)
	}
}

// An UpdateWhere that errors AFTER an earlier row already moved its
// primary key must still rebuild the PK index — the uniqueness probe
// depends on it.
func TestUpdateWherePKErrorStillRebuilds(t *testing.T) {
	tab, err := NewTable("t", Schema{
		{Name: "id", Type: sqlval.TypeInt, PrimaryKey: true},
		{Name: "v", Type: sqlval.TypeInt, NotNull: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := tab.Insert([]sqlval.Value{sqlval.NewInt(int64(i)), sqlval.NewInt(0)}); err != nil {
			t.Fatal(err)
		}
	}
	// Row 1: id 1 → 11 succeeds. Row 2: NULL into NOT NULL v errors.
	_, err = tab.UpdateWhere(
		func([]sqlval.Value) (bool, error) { return true, nil },
		func(row []sqlval.Value) ([]sqlval.Value, error) {
			out := append([]sqlval.Value(nil), row...)
			out[0] = sqlval.NewInt(row[0].Int() + 10)
			if row[0].Int() == 2 {
				out[1] = sqlval.Null
			}
			return out, nil
		})
	if err == nil {
		t.Fatal("update must fail on the NOT NULL violation")
	}
	// id=11 exists now: inserting it again must be rejected, and the old
	// key 1 must be free.
	if err := tab.Insert([]sqlval.Value{sqlval.NewInt(11), sqlval.NewInt(0)}); err == nil {
		t.Fatal("duplicate PK 11 accepted: PK index went stale on the error path")
	}
	if err := tab.Insert([]sqlval.Value{sqlval.NewInt(1), sqlval.NewInt(0)}); err != nil {
		t.Fatalf("key 1 should be free after the move: %v", err)
	}
	for _, id := range []int64{1, 2, 11} {
		got := scanEqRows(t, tab, "id", sqlval.NewInt(id))
		want := filterScanRows(t, tab, 0, sqlval.NewInt(id))
		if joinLines(got) != joinLines(want) {
			t.Fatalf("id=%d: ScanEq %v != scan %v", id, got, want)
		}
	}
}

// SchemaEpoch moves on DDL and only on DDL.
func TestSchemaEpoch(t *testing.T) {
	db := NewDatabase()
	e0 := db.SchemaEpoch()
	tab, err := db.CreateTable("t", Schema{
		{Name: "id", Type: sqlval.TypeInt, PrimaryKey: true},
		{Name: "s", Type: sqlval.TypeString},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	if db.SchemaEpoch() == e0 {
		t.Error("CREATE TABLE must bump the epoch")
	}

	e1 := db.SchemaEpoch()
	if err := tab.Insert([]sqlval.Value{sqlval.NewInt(1), sqlval.NewString("a")}); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.UpdateWhere(
		func([]sqlval.Value) (bool, error) { return true, nil },
		func(row []sqlval.Value) ([]sqlval.Value, error) {
			out := append([]sqlval.Value(nil), row...)
			out[1] = sqlval.NewString("b")
			return out, nil
		}); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.DeleteWhere(func([]sqlval.Value) (bool, error) { return false, nil }); err != nil {
		t.Fatal(err)
	}
	if db.SchemaEpoch() != e1 {
		t.Error("data mutations must not bump the epoch")
	}

	if err := tab.CreateIndex("s"); err != nil {
		t.Fatal(err)
	}
	if db.SchemaEpoch() == e1 {
		t.Error("CREATE INDEX must bump the epoch")
	}

	e2 := db.SchemaEpoch()
	if err := db.DropTable("t", false); err != nil {
		t.Fatal(err)
	}
	if db.SchemaEpoch() == e2 {
		t.Error("DROP TABLE must bump the epoch")
	}
}
