// Package sqldb is the storage layer of the CroSSE relational substrate:
// table schemas, row storage, hash indexes and the database catalog. It
// plays the role PostgreSQL plays in the paper's SmartGround deployment.
// Query planning/evaluation lives in internal/sqlexec; the user-facing
// facade is internal/engine.
package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"crosse/internal/sqlval"
)

// Column describes one column of a table.
type Column struct {
	Name       string
	Type       sqlval.Type
	NotNull    bool
	PrimaryKey bool
}

// Schema is an ordered list of columns.
type Schema []Column

// ColIndex returns the position of the named column (case-insensitive),
// or -1 if absent.
func (s Schema) ColIndex(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Relation is a scannable named relation: local tables and (in internal/fdw)
// foreign tables both implement it, so the executor is agnostic to where
// rows live. Scan must call fn for each row; fn returning false stops the
// scan. Implementations must not retain the row slice after fn returns.
type Relation interface {
	Name() string
	Schema() Schema
	Scan(fn func(row []sqlval.Value) bool) error
}

// FilteredRelation is an optional Relation extension for sources that can
// evaluate simple per-column equality predicates themselves (predicate
// pushdown — the FDW layer uses this to avoid shipping whole tables).
type FilteredRelation interface {
	Relation
	// ScanEq scans only rows where column col equals v.
	ScanEq(col string, v sqlval.Value, fn func(row []sqlval.Value) bool) error
}

// StableRowScanner marks relations whose Scan/ScanEq callbacks receive
// retained row slices that are never mutated in place afterwards: inserts
// store freshly coerced slices, updates replace a row wholesale, deletes
// only move row headers. A consumer may keep the slices it was handed
// (zero-copy materialisation) instead of deep-copying; relations that
// reuse a callback buffer — foreign tables decoding from the wire — must
// not implement it.
type StableRowScanner interface {
	Relation
	// StableRowScan is a marker; it does nothing.
	StableRowScan()
}

// Table is an in-memory heap table with optional hash indexes.
type Table struct {
	mu      sync.RWMutex
	name    string
	schema  Schema
	rows    [][]sqlval.Value
	indexes map[string]*hashIndex // by lower-cased column name
	pkCol   int                   // -1 when no primary key

	// schemaChanged, when non-nil, is invoked after structural changes
	// (index creation). The owning Database installs it so compiled query
	// plans keyed on the catalog's schema epoch are invalidated.
	schemaChanged func()
}

// hashIndex maps an encoded column value to the row positions holding it.
// Position lists are kept in ascending order (insert appends the largest
// position; incremental delete/update maintenance preserves the order).
type hashIndex struct {
	col  int
	rows map[string][]int
}

func encodeKey(v sqlval.Value) string {
	// Type tag + rendered value keeps 1 ("1") distinct from '1' (text).
	return string(sqlval.AppendKey(nil, v))
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema Schema) (*Table, error) {
	if len(schema) == 0 {
		return nil, fmt.Errorf("sqldb: table %s needs at least one column", name)
	}
	seen := map[string]bool{}
	pk := -1
	for i, c := range schema {
		key := strings.ToLower(c.Name)
		if seen[key] {
			return nil, fmt.Errorf("sqldb: duplicate column %q in table %s", c.Name, name)
		}
		seen[key] = true
		if c.PrimaryKey {
			if pk >= 0 {
				return nil, fmt.Errorf("sqldb: table %s has multiple primary keys", name)
			}
			pk = i
		}
	}
	t := &Table{name: name, schema: schema, indexes: map[string]*hashIndex{}, pkCol: pk}
	if pk >= 0 {
		t.indexes[strings.ToLower(schema[pk].Name)] = &hashIndex{col: pk, rows: map[string][]int{}}
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Insert validates, coerces and appends a row.
func (t *Table) Insert(row []sqlval.Value) error {
	if len(row) != len(t.schema) {
		return fmt.Errorf("sqldb: table %s expects %d values, got %d", t.name, len(t.schema), len(row))
	}
	coerced := make([]sqlval.Value, len(row))
	for i, v := range row {
		cv, err := sqlval.Coerce(v, t.schema[i].Type)
		if err != nil {
			return fmt.Errorf("sqldb: column %s: %w", t.schema[i].Name, err)
		}
		if cv.IsNull() && t.schema[i].NotNull {
			return fmt.Errorf("sqldb: column %s of table %s is NOT NULL", t.schema[i].Name, t.name)
		}
		coerced[i] = cv
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var scratch [48]byte
	if t.pkCol >= 0 {
		idx := t.indexes[strings.ToLower(t.schema[t.pkCol].Name)]
		if len(idx.rows[string(sqlval.AppendKey(scratch[:0], coerced[t.pkCol]))]) > 0 {
			return fmt.Errorf("sqldb: duplicate primary key %v in table %s", coerced[t.pkCol], t.name)
		}
	}
	pos := len(t.rows)
	t.rows = append(t.rows, coerced)
	for _, idx := range t.indexes {
		k := encodeKey(coerced[idx.col])
		idx.rows[k] = append(idx.rows[k], pos)
	}
	return nil
}

// StableRowScan marks the table's scans as safe for zero-copy
// materialisation (see StableRowScanner).
func (t *Table) StableRowScan() {}

// Scan iterates over all rows. The callback must not mutate the row.
func (t *Table) Scan(fn func(row []sqlval.Value) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.rows {
		if !fn(r) {
			return nil
		}
	}
	return nil
}

// ScanEq iterates over rows where column col equals v, using a hash index
// when one exists and falling back to a filtered scan otherwise.
func (t *Table) ScanEq(col string, v sqlval.Value, fn func(row []sqlval.Value) bool) error {
	ci := t.schema.ColIndex(col)
	if ci < 0 {
		return fmt.Errorf("sqldb: table %s has no column %q", t.name, col)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if idx, ok := t.indexes[strings.ToLower(t.schema[ci].Name)]; ok {
		var scratch [48]byte
		for _, pos := range idx.rows[string(sqlval.AppendKey(scratch[:0], v))] {
			if !fn(t.rows[pos]) {
				return nil
			}
		}
		return nil
	}
	for _, r := range t.rows {
		if r[ci].Equal(v) {
			if !fn(r) {
				return nil
			}
		}
	}
	return nil
}

// HasIndex reports whether an index exists on the column.
func (t *Table) HasIndex(col string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.indexes[strings.ToLower(col)]
	return ok
}

// CreateIndex builds a hash index on the column.
func (t *Table) CreateIndex(col string) error {
	ci := t.schema.ColIndex(col)
	if ci < 0 {
		return fmt.Errorf("sqldb: table %s has no column %q", t.name, col)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	key := strings.ToLower(t.schema[ci].Name)
	if _, ok := t.indexes[key]; ok {
		return nil // idempotent
	}
	idx := &hashIndex{col: ci, rows: map[string][]int{}}
	for pos, r := range t.rows {
		k := encodeKey(r[ci])
		idx.rows[k] = append(idx.rows[k], pos)
	}
	t.indexes[key] = idx
	if t.schemaChanged != nil {
		t.schemaChanged()
	}
	return nil
}

// DeleteWhere removes rows for which pred returns true and reports how many
// were removed. Indexes are maintained incrementally: instead of re-hashing
// every row (the old full rebuild), each index's position lists are
// rewritten in place — deleted positions dropped, surviving positions
// shifted down by the number of deletions before them — which is pure
// integer work, no key encoding and no map churn.
func (t *Table) DeleteWhere(pred func(row []sqlval.Value) (bool, error)) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.rows)
	var del []bool  // del[pos]: row at old position pos was deleted
	var shift []int // shift[pos]: deletions strictly before pos
	kept := t.rows[:0]
	deleted := 0
	for pos, r := range t.rows {
		d, err := pred(r)
		if err != nil {
			// The prefix of t.rows was already compacted; finish the
			// compaction treating the remaining rows as kept so the table
			// stays consistent, then surface the error together with how
			// many rows really were removed before it.
			for _, rest := range t.rows[pos:] {
				kept = append(kept, rest)
			}
			t.rows = kept
			if deleted > 0 {
				t.rebuildIndexesLocked()
			}
			return deleted, err
		}
		if d {
			if del == nil {
				del = make([]bool, n)
				shift = make([]int, n)
			}
			del[pos] = true
			deleted++
		} else {
			kept = append(kept, r)
		}
		if shift != nil && pos+1 < n {
			shift[pos+1] = deleted
		}
	}
	t.rows = kept
	if deleted > 0 {
		for _, idx := range t.indexes {
			for k, positions := range idx.rows {
				out := positions[:0]
				for _, p := range positions {
					if !del[p] {
						out = append(out, p-shift[p])
					}
				}
				if len(out) == 0 {
					delete(idx.rows, k)
				} else {
					idx.rows[k] = out
				}
			}
		}
	}
	return deleted, nil
}

// UpdateWhere applies fn to each row matching pred; fn returns the new row
// (which is validated and coerced) and must not mutate the row slice it
// receives — stored rows are immutable in place (the StableRowScanner
// contract), an update replaces the whole row. It reports how many rows
// changed. Row positions are stable under update, so indexes are patched
// incrementally — only entries whose indexed value actually changed move
// between key buckets. Changes to the primary-key column fall back to a
// full rebuild (the PK index doubles as the uniqueness probe, so its
// buckets must be exact even after a partial failure).
func (t *Table) UpdateWhere(pred func(row []sqlval.Value) (bool, error), fn func(row []sqlval.Value) ([]sqlval.Value, error)) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	changed := 0
	pkChanged := false
	// The rebuild must also run when an error aborts the loop after an
	// earlier row already moved its primary key — otherwise the PK index
	// (the uniqueness probe) would go stale.
	defer func() {
		if pkChanged {
			t.rebuildIndexesLocked()
		}
	}()
	for i, r := range t.rows {
		match, err := pred(r)
		if err != nil {
			return changed, err
		}
		if !match {
			continue
		}
		// r keeps referencing the pre-update values after t.rows[i] is
		// replaced below; incremental index repointing compares them
		// against the new keys.
		old := r
		nr, err := fn(r)
		if err != nil {
			return changed, err
		}
		if len(nr) != len(t.schema) {
			return changed, fmt.Errorf("sqldb: update produced %d values, want %d", len(nr), len(t.schema))
		}
		coerced := make([]sqlval.Value, len(nr))
		for ci, v := range nr {
			cv, cerr := sqlval.Coerce(v, t.schema[ci].Type)
			if cerr != nil {
				return changed, fmt.Errorf("sqldb: column %s: %w", t.schema[ci].Name, cerr)
			}
			if cv.IsNull() && t.schema[ci].NotNull {
				return changed, fmt.Errorf("sqldb: column %s of table %s is NOT NULL", t.schema[ci].Name, t.name)
			}
			coerced[ci] = cv
		}
		t.rows[i] = coerced
		changed++
		for _, idx := range t.indexes {
			if idx.col == t.pkCol && t.pkCol >= 0 {
				if !sameKey(old[idx.col], coerced[idx.col]) {
					pkChanged = true
				}
				continue // PK handled by the rebuild fallback below
			}
			t.repointLocked(idx, i, old[idx.col], coerced[idx.col])
		}
	}
	return changed, nil
}

// sameKey reports whether two values produce the same index key.
func sameKey(a, b sqlval.Value) bool {
	var sa, sb [48]byte
	return string(sqlval.AppendKey(sa[:0], a)) == string(sqlval.AppendKey(sb[:0], b))
}

// repointLocked moves position pos from oldV's bucket to newV's bucket,
// preserving ascending position order within each bucket. No-op when the
// key is unchanged.
func (t *Table) repointLocked(idx *hashIndex, pos int, oldV, newV sqlval.Value) {
	var scratch [48]byte
	oldK := string(sqlval.AppendKey(scratch[:0], oldV))
	newK := string(sqlval.AppendKey(scratch[:0], newV))
	if oldK == newK {
		return
	}
	bucket := idx.rows[oldK]
	for i, p := range bucket {
		if p == pos {
			bucket = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(bucket) == 0 {
		delete(idx.rows, oldK)
	} else {
		idx.rows[oldK] = bucket
	}
	nb := idx.rows[newK]
	at := len(nb)
	for at > 0 && nb[at-1] > pos {
		at--
	}
	nb = append(nb, 0)
	copy(nb[at+1:], nb[at:])
	nb[at] = pos
	idx.rows[newK] = nb
}

func (t *Table) rebuildIndexesLocked() {
	for _, idx := range t.indexes {
		idx.rows = map[string][]int{}
		for pos, r := range t.rows {
			k := encodeKey(r[idx.col])
			idx.rows[k] = append(idx.rows[k], pos)
		}
	}
}

// Database is the catalog: named local tables plus registered external
// relations (foreign tables).
type Database struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	foreign map[string]Relation

	// epoch counts schema changes: table creation/drop, foreign
	// registration, and index creation on owned tables. Compiled query
	// plans are keyed on (text, epoch): any DDL bumps the epoch so stale
	// plans are recompiled, while pure data mutations never do.
	epoch atomic.Uint64
}

// SchemaEpoch returns the current schema-change counter. It increases on
// every DDL operation (CREATE/DROP TABLE, CREATE INDEX, foreign-table
// registration) and never on data mutations; plan caches compare it to
// decide whether a compiled plan still reflects the catalog.
func (d *Database) SchemaEpoch() uint64 { return d.epoch.Load() }

func (d *Database) bumpEpoch() { d.epoch.Add(1) }

// NewDatabase returns an empty catalog.
func NewDatabase() *Database {
	return &Database{tables: map[string]*Table{}, foreign: map[string]Relation{}}
}

// CreateTable adds a new table.
func (d *Database) CreateTable(name string, schema Schema, ifNotExists bool) (*Table, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := strings.ToLower(name)
	if t, ok := d.tables[key]; ok {
		if ifNotExists {
			return t, nil
		}
		return nil, fmt.Errorf("sqldb: table %s already exists", name)
	}
	if _, ok := d.foreign[key]; ok {
		return nil, fmt.Errorf("sqldb: %s is a foreign table", name)
	}
	t, err := NewTable(name, schema)
	if err != nil {
		return nil, err
	}
	t.schemaChanged = d.bumpEpoch
	d.tables[key] = t
	d.bumpEpoch()
	return t, nil
}

// DropTable removes a table (local or foreign registration).
func (d *Database) DropTable(name string, ifExists bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := d.tables[key]; ok {
		delete(d.tables, key)
		d.bumpEpoch()
		return nil
	}
	if _, ok := d.foreign[key]; ok {
		delete(d.foreign, key)
		d.bumpEpoch()
		return nil
	}
	if ifExists {
		return nil
	}
	return fmt.Errorf("sqldb: table %s does not exist", name)
}

// Table returns the named local table.
func (d *Database) Table(name string) (*Table, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, ok := d.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("sqldb: table %s does not exist", name)
	}
	return t, nil
}

// RegisterForeign exposes an external Relation under its name. Used by the
// FDW layer — the paper's postgres_fdw integration point.
func (d *Database) RegisterForeign(r Relation) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := strings.ToLower(r.Name())
	if _, ok := d.tables[key]; ok {
		return fmt.Errorf("sqldb: %s already exists as a local table", r.Name())
	}
	if _, ok := d.foreign[key]; ok {
		return fmt.Errorf("sqldb: foreign table %s already registered", r.Name())
	}
	d.foreign[key] = r
	d.bumpEpoch()
	return nil
}

// Resolve returns the relation (local or foreign) under the name.
func (d *Database) Resolve(name string) (Relation, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	key := strings.ToLower(name)
	if t, ok := d.tables[key]; ok {
		return t, nil
	}
	if r, ok := d.foreign[key]; ok {
		return r, nil
	}
	return nil, fmt.Errorf("sqldb: relation %s does not exist", name)
}

// Names lists all relation names, sorted, local tables first.
func (d *Database) Names() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var local, remote []string
	for _, t := range d.tables {
		local = append(local, t.Name())
	}
	for _, r := range d.foreign {
		remote = append(remote, r.Name())
	}
	sort.Strings(local)
	sort.Strings(remote)
	return append(local, remote...)
}

var (
	_ Relation         = (*Table)(nil)
	_ FilteredRelation = (*Table)(nil)
)
