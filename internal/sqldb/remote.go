package sqldb

// remote.go — the seams the executor uses to talk to relations whose rows
// live on another node (internal/fdw foreign tables). The storage layer
// defines them so sqlexec can depend on the contract without importing the
// network stack.

import (
	"context"
	"errors"

	"crosse/internal/sqlval"
)

// ErrSourceDown marks a scan failure where the backing source is known to
// be unavailable before any row was produced — typically a remote peer
// whose circuit breaker is open. The executor can fail such queries fast,
// or (under sqlexec.Options.PartialResults) skip the source and report it
// in the result instead of failing the whole query. internal/fdw aliases
// this as fdw.ErrSourceDown.
var ErrSourceDown = errors.New("source unavailable")

// SourceNamer is implemented by errors that identify which source failed;
// the executor uses it to name skipped sources in partial results.
type SourceNamer interface {
	SourceName() string
}

// SourceOf extracts the failing source's name from an error chain, falling
// back to fallback when no SourceNamer is present.
func SourceOf(err error, fallback string) string {
	var sn SourceNamer
	if errors.As(err, &sn) {
		return sn.SourceName()
	}
	return fallback
}

// ContextRelation is an optional Relation extension for sources whose
// scans can honour a deadline or cancellation — remote relations must
// implement it so a stalled peer cannot hang a query past its deadline.
// Local in-memory tables do not need it (their scans never block).
type ContextRelation interface {
	Relation
	// ScanContext behaves like Scan bounded by ctx: when ctx is done the
	// scan returns promptly with an error wrapping ctx.Err() or a
	// transport deadline error.
	ScanContext(ctx context.Context, fn func(row []sqlval.Value) bool) error
}

// ContextFilteredRelation is the context-aware counterpart of
// FilteredRelation.
type ContextFilteredRelation interface {
	FilteredRelation
	ScanEqContext(ctx context.Context, col string, v sqlval.Value, fn func(row []sqlval.Value) bool) error
}
