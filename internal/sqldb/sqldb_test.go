package sqldb

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"crosse/internal/sqlval"
)

func testSchema() Schema {
	return Schema{
		{Name: "id", Type: sqlval.TypeInt, PrimaryKey: true, NotNull: true},
		{Name: "name", Type: sqlval.TypeString, NotNull: true},
		{Name: "area", Type: sqlval.TypeFloat},
	}
}

func mkRow(id int64, name string, area any) []sqlval.Value {
	a := sqlval.Null
	if f, ok := area.(float64); ok {
		a = sqlval.NewFloat(f)
	}
	return []sqlval.Value{sqlval.NewInt(id), sqlval.NewString(name), a}
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable("t", nil); err == nil {
		t.Error("empty schema must fail")
	}
	if _, err := NewTable("t", Schema{{Name: "a", Type: sqlval.TypeInt}, {Name: "A", Type: sqlval.TypeInt}}); err == nil {
		t.Error("duplicate column (case-insensitive) must fail")
	}
	if _, err := NewTable("t", Schema{
		{Name: "a", Type: sqlval.TypeInt, PrimaryKey: true},
		{Name: "b", Type: sqlval.TypeInt, PrimaryKey: true},
	}); err == nil {
		t.Error("two primary keys must fail")
	}
}

func TestInsertAndScan(t *testing.T) {
	tab, err := NewTable("landfill", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(mkRow(1, "a", 10.5)); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(mkRow(2, "b", nil)); err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	var names []string
	tab.Scan(func(row []sqlval.Value) bool {
		names = append(names, row[1].Str())
		return true
	})
	if strings.Join(names, ",") != "a,b" {
		t.Errorf("scan order: %v", names)
	}
}

func TestInsertValidation(t *testing.T) {
	tab, _ := NewTable("t", testSchema())
	if err := tab.Insert([]sqlval.Value{sqlval.NewInt(1)}); err == nil {
		t.Error("arity mismatch must fail")
	}
	if err := tab.Insert(mkRow(1, "a", nil)); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(mkRow(1, "dup", nil)); err == nil {
		t.Error("duplicate primary key must fail")
	}
	if err := tab.Insert([]sqlval.Value{sqlval.NewInt(2), sqlval.Null, sqlval.Null}); err == nil {
		t.Error("NOT NULL violation must fail")
	}
	// Coercion applies: float 3.0 → int pk.
	if err := tab.Insert([]sqlval.Value{sqlval.NewFloat(3.0), sqlval.NewString("c"), sqlval.NewInt(7)}); err != nil {
		t.Errorf("coercible insert failed: %v", err)
	}
	var last []sqlval.Value
	tab.Scan(func(row []sqlval.Value) bool { last = append([]sqlval.Value(nil), row...); return true })
	if last[0].Type() != sqlval.TypeInt || last[2].Type() != sqlval.TypeFloat {
		t.Errorf("types not coerced: %v %v", last[0].Type(), last[2].Type())
	}
}

func TestScanEqWithAndWithoutIndex(t *testing.T) {
	tab, _ := NewTable("t", testSchema())
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("n%d", i%10)
		if err := tab.Insert(mkRow(int64(i), name, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	count := func() int {
		n := 0
		tab.ScanEq("name", sqlval.NewString("n3"), func([]sqlval.Value) bool { n++; return true })
		return n
	}
	if got := count(); got != 10 {
		t.Errorf("unindexed ScanEq: %d, want 10", got)
	}
	if err := tab.CreateIndex("name"); err != nil {
		t.Fatal(err)
	}
	if !tab.HasIndex("name") {
		t.Error("HasIndex after CreateIndex")
	}
	if got := count(); got != 10 {
		t.Errorf("indexed ScanEq: %d, want 10", got)
	}
	// PK lookups use the automatic index.
	n := 0
	tab.ScanEq("id", sqlval.NewInt(42), func([]sqlval.Value) bool { n++; return true })
	if n != 1 {
		t.Errorf("pk ScanEq: %d", n)
	}
	if err := tab.ScanEq("nope", sqlval.Null, func([]sqlval.Value) bool { return true }); err == nil {
		t.Error("ScanEq on unknown column must fail")
	}
}

func TestIndexDistinguishesTypes(t *testing.T) {
	tab, _ := NewTable("t", Schema{{Name: "v", Type: sqlval.TypeString}})
	tab.Insert([]sqlval.Value{sqlval.NewString("1")})
	n := 0
	tab.ScanEq("v", sqlval.NewInt(1), func([]sqlval.Value) bool { n++; return true })
	if n != 0 {
		t.Error("int 1 must not match text '1'")
	}
}

func TestDeleteWhere(t *testing.T) {
	tab, _ := NewTable("t", testSchema())
	for i := 0; i < 10; i++ {
		tab.Insert(mkRow(int64(i), fmt.Sprintf("n%d", i), float64(i)))
	}
	tab.CreateIndex("name")
	n, err := tab.DeleteWhere(func(row []sqlval.Value) (bool, error) {
		return row[0].Int()%2 == 0, nil
	})
	if err != nil || n != 5 {
		t.Fatalf("deleted %d, err %v", n, err)
	}
	if tab.Len() != 5 {
		t.Errorf("Len = %d", tab.Len())
	}
	// Index rebuilt: lookup still works.
	cnt := 0
	tab.ScanEq("name", sqlval.NewString("n1"), func([]sqlval.Value) bool { cnt++; return true })
	if cnt != 1 {
		t.Errorf("index stale after delete: %d", cnt)
	}
}

func TestUpdateWhere(t *testing.T) {
	tab, _ := NewTable("t", testSchema())
	for i := 0; i < 5; i++ {
		tab.Insert(mkRow(int64(i), "x", float64(i)))
	}
	n, err := tab.UpdateWhere(
		func(row []sqlval.Value) (bool, error) { return row[0].Int() >= 3, nil },
		func(row []sqlval.Value) ([]sqlval.Value, error) {
			out := append([]sqlval.Value(nil), row...)
			out[1] = sqlval.NewString("updated")
			return out, nil
		})
	if err != nil || n != 2 {
		t.Fatalf("updated %d, err %v", n, err)
	}
	cnt := 0
	tab.Scan(func(row []sqlval.Value) bool {
		if row[1].Str() == "updated" {
			cnt++
		}
		return true
	})
	if cnt != 2 {
		t.Errorf("updated rows visible: %d", cnt)
	}
	// Update violating NOT NULL fails.
	_, err = tab.UpdateWhere(
		func(row []sqlval.Value) (bool, error) { return true, nil },
		func(row []sqlval.Value) ([]sqlval.Value, error) {
			out := append([]sqlval.Value(nil), row...)
			out[1] = sqlval.Null
			return out, nil
		})
	if err == nil {
		t.Error("NOT NULL violation in update must fail")
	}
}

func TestDatabaseCatalog(t *testing.T) {
	db := NewDatabase()
	_, err := db.CreateTable("t", testSchema(), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("T", testSchema(), false); err == nil {
		t.Error("case-insensitive duplicate must fail")
	}
	if _, err := db.CreateTable("t", testSchema(), true); err != nil {
		t.Error("IF NOT EXISTS must not fail")
	}
	if _, err := db.Table("t"); err != nil {
		t.Error(err)
	}
	if _, err := db.Resolve("T"); err != nil {
		t.Error("Resolve is case-insensitive")
	}
	if err := db.DropTable("t", false); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("t", false); err == nil {
		t.Error("dropping absent table must fail")
	}
	if err := db.DropTable("t", true); err != nil {
		t.Error("IF EXISTS drop of absent table must pass")
	}
}

// fakeRel is a minimal foreign relation for catalog tests.
type fakeRel struct{ name string }

func (f fakeRel) Name() string   { return f.name }
func (f fakeRel) Schema() Schema { return Schema{{Name: "x", Type: sqlval.TypeInt}} }
func (f fakeRel) Scan(fn func([]sqlval.Value) bool) error {
	fn([]sqlval.Value{sqlval.NewInt(1)})
	return nil
}

func TestForeignRegistration(t *testing.T) {
	db := NewDatabase()
	if err := db.RegisterForeign(fakeRel{"remote"}); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterForeign(fakeRel{"remote"}); err == nil {
		t.Error("duplicate foreign registration must fail")
	}
	if _, err := db.CreateTable("remote", testSchema(), false); err == nil {
		t.Error("local table shadowing a foreign one must fail")
	}
	r, err := db.Resolve("remote")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	r.Scan(func([]sqlval.Value) bool { n++; return true })
	if n != 1 {
		t.Error("foreign scan")
	}
	db.CreateTable("local", testSchema(), false)
	names := db.Names()
	if len(names) != 2 || names[0] != "local" || names[1] != "remote" {
		t.Errorf("Names = %v", names)
	}
	if err := db.DropTable("remote", false); err != nil {
		t.Error("foreign tables can be dropped:", err)
	}
}

func TestConcurrentInsertScan(t *testing.T) {
	tab, _ := NewTable("t", Schema{{Name: "v", Type: sqlval.TypeInt}})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				tab.Insert([]sqlval.Value{sqlval.NewInt(int64(g*1000 + i))})
				tab.Scan(func([]sqlval.Value) bool { return true })
			}
		}(g)
	}
	wg.Wait()
	if tab.Len() != 1000 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := testSchema()
	if s.ColIndex("NAME") != 1 {
		t.Error("ColIndex case-insensitive")
	}
	if s.ColIndex("missing") != -1 {
		t.Error("ColIndex missing")
	}
	if strings.Join(s.Names(), ",") != "id,name,area" {
		t.Errorf("Names: %v", s.Names())
	}
}
