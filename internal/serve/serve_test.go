package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestCacheHitMissEvict(t *testing.T) {
	c := NewCache(2, 1<<20)
	k1 := Key{User: "alice", Query: "q1", Lang: "sesql", ViewEpoch: 1}
	k2 := Key{User: "alice", Query: "q2", Lang: "sesql", ViewEpoch: 1}
	k3 := Key{User: "bob", Query: "q1", Lang: "sesql", ViewEpoch: 1}

	if _, ok := c.Get(k1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k1, "r1", 10)
	c.Put(k2, "r2", 10)
	if v, ok := c.Get(k1); !ok || v != "r1" {
		t.Fatalf("Get(k1) = %v, %v", v, ok)
	}
	// k1 is now hottest; inserting k3 evicts k2.
	c.Put(k3, "r3", 10)
	if _, ok := c.Get(k2); ok {
		t.Error("k2 should have been evicted (LRU)")
	}
	if _, ok := c.Get(k1); !ok {
		t.Error("k1 should survive")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 2 entries, 1 eviction", st)
	}
}

func TestCacheEpochChangesKey(t *testing.T) {
	c := NewCache(10, 1<<20)
	k := Key{User: "alice", Query: "q", Lang: "sesql", ViewEpoch: 1}
	c.Put(k, "old", 1)
	k.ViewEpoch = 2
	if _, ok := c.Get(k); ok {
		t.Fatal("entry under old epoch must not answer the new epoch")
	}
	c.Put(k, "new", 1)
	if v, _ := c.Get(k); v != "new" {
		t.Fatalf("got %v", v)
	}
	k.ViewEpoch = 1
	if v, _ := c.Get(k); v != "old" {
		t.Fatalf("old-epoch entry should still be readable, got %v", v)
	}
}

func TestCacheByteBudget(t *testing.T) {
	c := NewCache(100, 100)
	c.Put(Key{Query: "a"}, "a", 60)
	c.Put(Key{Query: "b"}, "b", 60) // 120 > 100: evicts "a"
	if _, ok := c.Get(Key{Query: "a"}); ok {
		t.Error("byte budget should have evicted a")
	}
	if _, ok := c.Get(Key{Query: "b"}); !ok {
		t.Error("b should be cached")
	}
	// An entry larger than the whole budget is refused outright.
	c.Put(Key{Query: "huge"}, "huge", 1000)
	if _, ok := c.Get(Key{Query: "huge"}); ok {
		t.Error("oversized entry must not be cached")
	}
	if st := c.Stats(); st.Bytes > 100 {
		t.Errorf("bytes = %d, want <= 100", st.Bytes)
	}
}

func TestCacheUpdateSameKey(t *testing.T) {
	c := NewCache(10, 100)
	k := Key{Query: "q"}
	c.Put(k, "v1", 40)
	c.Put(k, "v2", 70)
	if v, _ := c.Get(k); v != "v2" {
		t.Fatalf("got %v", v)
	}
	if st := c.Stats(); st.Bytes != 70 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 70 bytes / 1 entry", st)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(64, 1<<20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := Key{User: "u", Query: string(rune('a' + (g+i)%16)), ViewEpoch: uint64(i % 4)}
				c.Put(k, i, 8)
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 64 {
		t.Errorf("len = %d, want <= 64", n)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(100 * time.Microsecond)
	}
	h.Observe(2 * time.Second)
	st := h.stats()
	if st.Count != 100 {
		t.Fatalf("count = %d", st.Count)
	}
	// 100µs lands in the 100µs bucket, so p50/p95 report its bound.
	if st.P50US != 100 || st.P95US != 100 {
		t.Errorf("p50 = %d, p95 = %d, want 100", st.P50US, st.P95US)
	}
	if st.P99US < 1_000_000 {
		t.Errorf("p99 = %dµs, want >= 1s for the outlier", st.P99US)
	}
}

func TestMetricsBeginSnapshot(t *testing.T) {
	m := NewMetrics()
	done := m.Begin("GET /api/v1/users")
	snap := m.Snapshot()["GET /api/v1/users"]
	if snap.InFlight != 1 || snap.Requests != 0 {
		t.Fatalf("mid-flight snapshot = %+v", snap)
	}
	done(200)
	m.Begin("GET /api/v1/users")(404)
	snap = m.Snapshot()["GET /api/v1/users"]
	if snap.InFlight != 0 || snap.Requests != 2 {
		t.Fatalf("final snapshot = %+v", snap)
	}
	if snap.Status["2xx"] != 1 || snap.Status["4xx"] != 1 {
		t.Errorf("status classes = %v", snap.Status)
	}
	if snap.Latency.Count != 2 {
		t.Errorf("latency count = %d", snap.Latency.Count)
	}
}

func TestLimiterRejectsWhenSaturated(t *testing.T) {
	l := NewLimiter(1, 0)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	l.Release()
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatalf("after release: %v", err)
	}
	l.Release()
	st := l.Stats()
	if st.Admitted != 2 || st.Rejected != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLimiterQueueAdmitsAfterRelease(t *testing.T) {
	l := NewLimiter(1, 1)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- l.Acquire(context.Background()) }()
	// Wait until the second caller is queued, then a third is rejected.
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second Acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third Acquire err = %v, want ErrOverloaded", err)
	}
	l.Release()
	if err := <-got; err != nil {
		t.Fatalf("queued Acquire err = %v", err)
	}
	l.Release()
}

func TestLimiterContextCancelWhileQueued(t *testing.T) {
	l := NewLimiter(1, 4)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() { got <- l.Acquire(ctx) }()
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("Acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	l.Release()
	// The cancelled waiter must have released its queue ticket.
	if st := l.Stats(); st.Queued != 0 {
		t.Errorf("queued = %d after cancel, want 0", st.Queued)
	}
}

func TestLimiterDisabled(t *testing.T) {
	l := NewLimiter(0, 0)
	for i := 0; i < 100; i++ {
		if err := l.Acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	l.Release() // must not panic or block
	if st := l.Stats(); st.Admitted != 100 || st.MaxInflight != 0 {
		t.Errorf("stats = %+v", st)
	}
}
