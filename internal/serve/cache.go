// Package serve is the heavy-traffic serving tier in front of the
// enrichment pipeline: an epoch-keyed enriched-result cache, per-endpoint
// request metrics, and admission control. The REST layer composes these
// around its handlers; none of them know about HTTP routing, so they are
// independently testable and reusable by other fronts (e.g. a future gRPC
// surface).
package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Key identifies one cached enriched result. Epochs make invalidation
// free: a mutation bumps the owning epoch, so stale entries become
// unreachable (and age out of the LRU) rather than being hunted down.
//
//   - ViewEpoch moves when the user's KB changes (kb.Platform.ViewEpoch:
//     Insert/Import/Retract, stored-query registration).
//   - SchemaEpoch moves on databank DDL (sqldb.Database.SchemaEpoch).
//   - Opts captures anything else that changes the answer for the same
//     text: execution options, stats/rank request flags.
type Key struct {
	User        string
	Query       string
	Lang        string // "sesql" | "sparql"
	Opts        string // canonical encoding of result-affecting options
	ViewEpoch   uint64
	SchemaEpoch uint64
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
	MaxEntrs  int    `json:"max_entries"`
}

// Cache is a bounded LRU over enriched results, keyed by Key. It bounds
// both entry count and total byte budget (callers report each entry's
// size); inserting past either bound evicts from the cold end. All methods
// are safe for concurrent use.
type Cache struct {
	maxEntries int
	maxBytes   int64

	mu    sync.Mutex
	ll    *list.List // front = hottest
	items map[Key]*list.Element
	bytes int64

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type cacheEntry struct {
	key   Key
	value any
	size  int64
}

// NewCache builds a cache bounded by maxEntries and maxBytes. Zero (or
// negative) maxEntries defaults to 4096 entries; zero maxBytes defaults to
// 64 MiB. To disable caching, don't construct one — the REST layer treats
// a nil cache as cache-off.
func NewCache(maxEntries int, maxBytes int64) *Cache {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[Key]*list.Element),
	}
}

// Get returns the cached value for key, promoting it to hottest.
func (c *Cache) Get(key Key) (any, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	v := el.Value.(*cacheEntry).value
	c.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put inserts value under key, charging size bytes against the budget. An
// entry larger than the whole byte budget is refused (caching it would
// empty the cache for no reuse benefit).
func (c *Cache) Put(key Key, value any, size int64) {
	if size < 0 {
		size = 0
	}
	if size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += size - ent.size
		ent.value, ent.size = value, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, value: value, size: size})
		c.bytes += size
	}
	for c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes {
		c.evictOldest()
	}
}

// evictOldest removes the cold end. Caller holds c.mu.
func (c *Cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, ent.key)
	c.bytes -= ent.size
	c.evictions.Add(1)
}

// Len returns the live entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	entries, bytes := c.ll.Len(), c.bytes
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
		Bytes:     bytes,
		MaxBytes:  c.maxBytes,
		MaxEntrs:  c.maxEntries,
	}
}
