package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latBuckets are the histogram's upper bounds in microseconds: geometric
// ×2 from 50µs to ~26s, covering everything from a cache hit to a stalled
// federated scan. The last bucket is unbounded.
const numLatBuckets = 20

var latBuckets = func() [numLatBuckets]int64 {
	var b [numLatBuckets]int64
	v := int64(50)
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// Histogram is a fixed-bucket latency histogram with lock-free recording.
type Histogram struct {
	counts [numLatBuckets + 1]atomic.Uint64
	sumUS  atomic.Int64
	n      atomic.Uint64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	i := sort.Search(len(latBuckets), func(i int) bool { return us <= latBuckets[i] })
	h.counts[i].Add(1)
	h.sumUS.Add(us)
	h.n.Add(1)
}

// Quantile estimates the q-quantile (0 < q < 1) in microseconds from the
// bucket counts: the upper bound of the bucket containing the q-th sample.
// Zero when nothing was recorded.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen > rank {
			if i < len(latBuckets) {
				return latBuckets[i]
			}
			return 2 * latBuckets[len(latBuckets)-1] // overflow bucket
		}
	}
	return 0
}

// HistStats is a JSON-ready histogram snapshot.
type HistStats struct {
	Count  uint64 `json:"count"`
	MeanUS int64  `json:"mean_us"`
	P50US  int64  `json:"p50_us"`
	P95US  int64  `json:"p95_us"`
	P99US  int64  `json:"p99_us"`
}

func (h *Histogram) stats() HistStats {
	n := h.n.Load()
	s := HistStats{
		Count: n,
		P50US: h.Quantile(0.50),
		P95US: h.Quantile(0.95),
		P99US: h.Quantile(0.99),
	}
	if n > 0 {
		s.MeanUS = h.sumUS.Load() / int64(n)
	}
	return s
}

// EndpointStats is one endpoint's JSON-ready metric snapshot.
type EndpointStats struct {
	Requests uint64            `json:"requests"`
	InFlight int64             `json:"in_flight"`
	Status   map[string]uint64 `json:"status,omitempty"` // "2xx" → count
	Latency  HistStats         `json:"latency"`
}

// endpoint holds one route's live counters.
type endpoint struct {
	requests atomic.Uint64
	inFlight atomic.Int64
	status   [6]atomic.Uint64 // index = status/100 (0 unused)
	hist     Histogram
}

// Metrics is the per-endpoint request metric registry. Endpoints register
// lazily on first use; snapshotting never blocks recording.
type Metrics struct {
	mu        sync.RWMutex
	endpoints map[string]*endpoint
}

// NewMetrics builds an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{endpoints: make(map[string]*endpoint)}
}

func (m *Metrics) endpoint(name string) *endpoint {
	m.mu.RLock()
	e, ok := m.endpoints[name]
	m.mu.RUnlock()
	if ok {
		return e
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok = m.endpoints[name]; ok {
		return e
	}
	e = &endpoint{}
	m.endpoints[name] = e
	return e
}

// Begin marks a request as in flight on the endpoint and returns the
// completion callback. Call done with the final HTTP status once the
// response is written.
func (m *Metrics) Begin(name string) (done func(status int)) {
	e := m.endpoint(name)
	e.inFlight.Add(1)
	start := time.Now()
	return func(status int) {
		e.inFlight.Add(-1)
		e.requests.Add(1)
		if c := status / 100; c >= 1 && c <= 5 {
			e.status[c].Add(1)
		}
		e.hist.Observe(time.Since(start))
	}
}

// Snapshot returns every endpoint's stats keyed by endpoint name.
func (m *Metrics) Snapshot() map[string]EndpointStats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]EndpointStats, len(m.endpoints))
	for name, e := range m.endpoints {
		st := EndpointStats{
			Requests: e.requests.Load(),
			InFlight: e.inFlight.Load(),
			Latency:  e.hist.stats(),
		}
		for c := 1; c <= 5; c++ {
			if n := e.status[c].Load(); n > 0 {
				if st.Status == nil {
					st.Status = make(map[string]uint64)
				}
				st.Status[statusClass(c)] = n
			}
		}
		out[name] = st
	}
	return out
}

func statusClass(c int) string {
	return string(rune('0'+c)) + "xx"
}
