package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrOverloaded reports that the serving tier refused admission: every
// execution slot is busy and the wait queue is full (or the caller's
// context expired while queued). The REST layer maps it to 429.
var ErrOverloaded = errors.New("serve: overloaded")

// Limiter is the admission controller: at most maxInflight requests
// execute concurrently, at most queueDepth more wait for a slot, and
// everything beyond that is rejected immediately. Saturation therefore
// degrades into fast, typed 429s instead of an unbounded goroutine
// pile-up collapsing the process.
type Limiter struct {
	slots chan struct{} // execution slots
	queue chan struct{} // wait tickets (bounds blocked Acquires)

	admitted atomic.Uint64
	rejected atomic.Uint64
	queued   atomic.Int64
}

// LimiterStats is a JSON-ready admission snapshot.
type LimiterStats struct {
	MaxInflight int    `json:"max_inflight"`
	QueueDepth  int    `json:"queue_depth"`
	InFlight    int    `json:"in_flight"`
	Queued      int64  `json:"queued"`
	Admitted    uint64 `json:"admitted"`
	Rejected    uint64 `json:"rejected"`
}

// NewLimiter builds an admission controller. maxInflight <= 0 disables
// limiting (every Acquire succeeds immediately); queueDepth < 0 is
// treated as 0 (no waiting — reject the moment slots are full).
func NewLimiter(maxInflight, queueDepth int) *Limiter {
	if maxInflight <= 0 {
		return &Limiter{}
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &Limiter{
		slots: make(chan struct{}, maxInflight),
		queue: make(chan struct{}, queueDepth),
	}
}

// Acquire claims an execution slot, waiting in the bounded queue when all
// slots are busy. It fails fast with ErrOverloaded when the queue is also
// full, and returns the context's error if it expires while waiting.
// Every successful Acquire must be paired with exactly one Release.
func (l *Limiter) Acquire(ctx context.Context) error {
	if l.slots == nil {
		l.admitted.Add(1)
		return nil
	}
	// Fast path: a free slot, no queueing.
	select {
	case l.slots <- struct{}{}:
		l.admitted.Add(1)
		return nil
	default:
	}
	// Slots are busy: wait only if the queue has room. With queue depth 0
	// this select can never proceed on a cap-0 channel, so saturation
	// rejects immediately.
	select {
	case l.queue <- struct{}{}:
	default:
		l.rejected.Add(1)
		return ErrOverloaded
	}
	l.queued.Add(1)
	defer func() {
		l.queued.Add(-1)
		<-l.queue
	}()
	select {
	case l.slots <- struct{}{}:
		l.admitted.Add(1)
		return nil
	case <-ctx.Done():
		l.rejected.Add(1)
		return ctx.Err()
	}
}

// Release returns an execution slot claimed by Acquire.
func (l *Limiter) Release() {
	if l.slots == nil {
		return
	}
	<-l.slots
}

// Stats snapshots the limiter counters.
func (l *Limiter) Stats() LimiterStats {
	s := LimiterStats{
		Admitted: l.admitted.Load(),
		Rejected: l.rejected.Load(),
		Queued:   l.queued.Load(),
	}
	if l.slots != nil {
		s.MaxInflight = cap(l.slots)
		s.QueueDepth = cap(l.queue)
		s.InFlight = len(l.slots)
	}
	return s
}
