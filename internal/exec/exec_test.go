package exec

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestMorselBounds(t *testing.T) {
	n, size := 2500, 1024
	nm := Morsels(n, size)
	if nm != 3 {
		t.Fatalf("Morsels(%d,%d) = %d, want 3", n, size, nm)
	}
	next := 0
	for m := 0; m < nm; m++ {
		lo, hi := Bounds(m, size, n)
		if lo != next || hi <= lo || hi > n {
			t.Fatalf("morsel %d: bounds [%d,%d) after %d", m, lo, hi, next)
		}
		next = hi
	}
	if next != n {
		t.Fatalf("morsels cover %d of %d rows", next, n)
	}
}

func TestWorkers(t *testing.T) {
	if w := Workers(4); w != 4 {
		t.Fatalf("Workers(4) = %d", w)
	}
	if w := Workers(0); w < 1 {
		t.Fatalf("Workers(0) = %d", w)
	}
	if w := Workers(-3); w != 1 {
		t.Fatalf("Workers(-3) = %d", w)
	}
}

// TestPoolCoverage proves every morsel runs exactly once and each worker's
// claimed sequence is strictly increasing.
func TestPoolCoverage(t *testing.T) {
	const morsels = 257
	p := NewPool(8, morsels)
	var mu sync.Mutex
	ran := make([]int, morsels)
	last := map[int]int{}
	p.Run(func(w, m int) {
		mu.Lock()
		ran[m]++
		if prev, ok := last[w]; ok && m <= prev {
			t.Errorf("worker %d claimed morsel %d after %d", w, m, prev)
		}
		last[w] = m
		mu.Unlock()
	})
	for m, c := range ran {
		if c != 1 {
			t.Fatalf("morsel %d ran %d times", m, c)
		}
	}
}

// TestPoolCut proves a cut stops later morsels while everything below the
// cut still runs.
func TestPoolCut(t *testing.T) {
	const morsels = 100
	p := NewPool(4, morsels)
	var ran [morsels]atomic.Bool
	p.Run(func(w, m int) {
		if m == 10 {
			p.Cut(50)
		}
		ran[m].Store(true)
	})
	for m := 0; m < 50; m++ {
		if !ran[m].Load() {
			t.Fatalf("morsel %d below the cut did not run", m)
		}
	}
	if !p.Cancelled(50) || p.Cancelled(49) {
		t.Fatalf("cut boundary wrong")
	}
}

func TestLimiterPrefix(t *testing.T) {
	l := NewLimiter(5, 10)
	// Out-of-order completion: the target is only met once the prefix is
	// contiguous.
	if _, ok := l.Done(2, 100); ok {
		t.Fatal("morsel 2 alone cannot satisfy the prefix")
	}
	if _, ok := l.Done(0, 4); ok {
		t.Fatal("4 rows < 10")
	}
	cut, ok := l.Done(1, 6)
	if !ok || cut != 2 {
		t.Fatalf("Done(1) = (%d,%v), want (2,true): 0..1 hold 10 rows", cut, ok)
	}
}

func TestLimiterNeverMet(t *testing.T) {
	l := NewLimiter(3, 100)
	for m := 0; m < 3; m++ {
		if _, ok := l.Done(m, 1); ok {
			t.Fatalf("limiter met at morsel %d with 3 total rows", m)
		}
	}
}
