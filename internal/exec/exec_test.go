package exec

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMorselBounds(t *testing.T) {
	n, size := 2500, 1024
	nm := Morsels(n, size)
	if nm != 3 {
		t.Fatalf("Morsels(%d,%d) = %d, want 3", n, size, nm)
	}
	next := 0
	for m := 0; m < nm; m++ {
		lo, hi := Bounds(m, size, n)
		if lo != next || hi <= lo || hi > n {
			t.Fatalf("morsel %d: bounds [%d,%d) after %d", m, lo, hi, next)
		}
		next = hi
	}
	if next != n {
		t.Fatalf("morsels cover %d of %d rows", next, n)
	}
}

func TestWorkers(t *testing.T) {
	if w := Workers(4); w != 4 {
		t.Fatalf("Workers(4) = %d", w)
	}
	if w := Workers(0); w < 1 {
		t.Fatalf("Workers(0) = %d", w)
	}
	if w := Workers(-3); w != 1 {
		t.Fatalf("Workers(-3) = %d", w)
	}
}

// TestPoolCoverage proves every morsel runs exactly once and each worker's
// claimed sequence is strictly increasing.
func TestPoolCoverage(t *testing.T) {
	const morsels = 257
	p := NewPool(8, morsels)
	var mu sync.Mutex
	ran := make([]int, morsels)
	last := map[int]int{}
	p.Run(func(w, m int) {
		mu.Lock()
		ran[m]++
		if prev, ok := last[w]; ok && m <= prev {
			t.Errorf("worker %d claimed morsel %d after %d", w, m, prev)
		}
		last[w] = m
		mu.Unlock()
	})
	for m, c := range ran {
		if c != 1 {
			t.Fatalf("morsel %d ran %d times", m, c)
		}
	}
}

// TestPoolCut proves a cut stops later morsels while everything below the
// cut still runs.
func TestPoolCut(t *testing.T) {
	const morsels = 100
	p := NewPool(4, morsels)
	var ran [morsels]atomic.Bool
	p.Run(func(w, m int) {
		if m == 10 {
			p.Cut(50)
		}
		ran[m].Store(true)
	})
	for m := 0; m < 50; m++ {
		if !ran[m].Load() {
			t.Fatalf("morsel %d below the cut did not run", m)
		}
	}
	if !p.Cancelled(50) || p.Cancelled(49) {
		t.Fatalf("cut boundary wrong")
	}
}

func TestLimiterPrefix(t *testing.T) {
	l := NewLimiter(5, 10)
	// Out-of-order completion: the target is only met once the prefix is
	// contiguous.
	if _, ok := l.Done(2, 100); ok {
		t.Fatal("morsel 2 alone cannot satisfy the prefix")
	}
	if _, ok := l.Done(0, 4); ok {
		t.Fatal("4 rows < 10")
	}
	cut, ok := l.Done(1, 6)
	if !ok || cut != 2 {
		t.Fatalf("Done(1) = (%d,%v), want (2,true): 0..1 hold 10 rows", cut, ok)
	}
}

func TestLimiterNeverMet(t *testing.T) {
	l := NewLimiter(3, 100)
	for m := 0; m < 3; m++ {
		if _, ok := l.Done(m, 1); ok {
			t.Fatalf("limiter met at morsel %d with 3 total rows", m)
		}
	}
}

// --- PhasedPool ---

// TestPhasedBarrier proves the barrier: every morsel of phase 1 finishes
// before any morsel of phase 2 starts.
func TestPhasedBarrier(t *testing.T) {
	const morsels = 64
	var phase1 atomic.Int64
	var violations atomic.Int64
	p := NewPhasedPool(8)
	err := p.Run(
		Phase{Morsels: morsels, Fn: func(_, m int) error {
			phase1.Add(1)
			return nil
		}},
		Phase{Morsels: morsels, Fn: func(_, m int) error {
			if phase1.Load() != morsels {
				violations.Add(1)
			}
			return nil
		}},
	)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d phase-2 morsels started before phase 1 completed", v)
	}
}

// TestPhasedFirstErrorWins proves build-phase error propagation: the error
// reported is the smallest failing morsel's (what the serial loop would hit
// first), and the probe phase never starts.
func TestPhasedFirstErrorWins(t *testing.T) {
	const morsels = 200
	var probeRan atomic.Int64
	errAt := func(m int) error { return fmt.Errorf("morsel %d failed", m) }
	p := NewPhasedPool(8)
	err := p.Run(
		Phase{Morsels: morsels, Fn: func(_, m int) error {
			if m%3 == 1 { // morsels 1, 4, 7, … fail
				return errAt(m)
			}
			return nil
		}},
		Phase{Morsels: morsels, Fn: func(_, m int) error {
			probeRan.Add(1)
			return nil
		}},
	)
	if err == nil || err.Error() != "morsel 1 failed" {
		t.Fatalf("err = %v, want the smallest failing morsel (1)", err)
	}
	if n := probeRan.Load(); n != 0 {
		t.Fatalf("probe phase ran %d morsels after a build-phase error", n)
	}
}

// TestPhasedCancelMidMerge proves cancellation during a later phase: once
// Cancel is observed no new morsel starts, Run reports ErrCancelled, and
// the phases after the cancelled one never run.
func TestPhasedCancelMidMerge(t *testing.T) {
	p := NewPhasedPool(1) // inline: deterministic morsel order
	var ran []int
	err := p.Run(
		Phase{Morsels: 2, Fn: func(_, m int) error { return nil }},
		Phase{Morsels: 10, Fn: func(_, m int) error {
			ran = append(ran, m)
			if m == 3 {
				p.Cancel()
			}
			return nil
		}},
		Phase{Morsels: 5, Fn: func(_, m int) error {
			t.Errorf("phase after cancellation ran morsel %d", m)
			return nil
		}},
	)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if len(ran) != 4 {
		t.Fatalf("merge phase ran morsels %v after Cancel at morsel 3", ran)
	}
}

// TestPhasedSerialInline proves one worker degenerates to the serial path:
// every morsel runs on the calling goroutine (zero spawns) in order.
func TestPhasedSerialInline(t *testing.T) {
	gid := func() string {
		buf := make([]byte, 64)
		buf = buf[:runtime.Stack(buf, false)]
		// "goroutine N [...": take the first two fields.
		if i := bytes.IndexByte(buf, '['); i > 0 {
			return string(buf[:i])
		}
		return string(buf)
	}
	caller := gid()
	var order []int
	p := NewPhasedPool(1)
	err := p.Run(Phase{Morsels: 20, Fn: func(w, m int) error {
		if g := gid(); g != caller {
			t.Errorf("morsel %d ran on %q, want calling goroutine %q", m, g, caller)
		}
		if w != 0 {
			t.Errorf("morsel %d ran on worker %d", m, w)
		}
		order = append(order, m)
		return nil
	}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for m := range order {
		if order[m] != m {
			t.Fatalf("inline morsel order %v not serial", order)
		}
	}
}

// TestPhasedCoverage proves every morsel of every phase runs exactly once
// on the error-free path.
func TestPhasedCoverage(t *testing.T) {
	counts := [2][131]atomic.Int32{}
	p := NewPhasedPool(4)
	err := p.Run(
		Phase{Morsels: 131, Fn: func(_, m int) error { counts[0][m].Add(1); return nil }},
		Phase{Morsels: 131, Fn: func(_, m int) error { counts[1][m].Add(1); return nil }},
	)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for ph := range counts {
		for m := range counts[ph] {
			if c := counts[ph][m].Load(); c != 1 {
				t.Fatalf("phase %d morsel %d ran %d times", ph, m, c)
			}
		}
	}
}

// --- LoserTree ---

// TestLoserTreeMerge merges randomly sized sorted runs and checks the
// output is the globally sorted sequence with ties in run-index order.
func TestLoserTreeMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(9)
		runs := make([][]int, k)
		type tagged struct{ v, run int }
		var all []tagged
		for r := range runs {
			n := rng.Intn(40)
			runs[r] = make([]int, n)
			for i := range runs[r] {
				runs[r][i] = rng.Intn(25) // dense: many cross-run ties
			}
			sort.Ints(runs[r])
			for _, v := range runs[r] {
				all = append(all, tagged{v, r})
			}
		}
		// The expected order: by value, ties by run index (runs are
		// internally sorted, so within (value, run) order is positional).
		sort.SliceStable(all, func(i, j int) bool {
			if all[i].v != all[j].v {
				return all[i].v < all[j].v
			}
			return all[i].run < all[j].run
		})
		lens := make([]int, k)
		for r := range runs {
			lens[r] = len(runs[r])
		}
		lt := NewLoserTree(lens, func(ra, ia, rb, ib int) bool {
			return runs[ra][ia] < runs[rb][ib]
		})
		for n := 0; ; n++ {
			r, i := lt.Next()
			if r < 0 {
				if n != len(all) {
					t.Fatalf("trial %d: merged %d of %d items", trial, n, len(all))
				}
				break
			}
			if n >= len(all) || runs[r][i] != all[n].v || r != all[n].run {
				t.Fatalf("trial %d item %d: got (run %d, val %d), want (run %d, val %d)",
					trial, n, r, runs[r][i], all[n].run, all[n].v)
			}
		}
		// Exhausted trees stay exhausted.
		if r, i := lt.Next(); r != -1 || i != -1 {
			t.Fatalf("trial %d: Next after exhaustion = (%d,%d)", trial, r, i)
		}
	}
}

// TestLoserTreeEmpty covers zero runs and all-empty runs.
func TestLoserTreeEmpty(t *testing.T) {
	lt := NewLoserTree(nil, func(_, _, _, _ int) bool { return false })
	if r, _ := lt.Next(); r != -1 {
		t.Fatalf("empty tree yielded run %d", r)
	}
	lt = NewLoserTree([]int{0, 0, 0}, func(_, _, _, _ int) bool { return false })
	if r, _ := lt.Next(); r != -1 {
		t.Fatalf("all-empty tree yielded run %d", r)
	}
}
