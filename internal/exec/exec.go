// Package exec is the shared morsel-driven scheduler behind the SQL and
// SPARQL executors' intra-query parallelism. A query's driving input is
// partitioned into fixed-size contiguous morsels in serial enumeration
// order; a bounded worker pool claims morsel indexes from an atomic
// counter, so each worker processes a strictly increasing sequence of
// morsels and every morsel is processed by exactly one worker. Executors
// keep all mutable scratch state per worker and buffer output per morsel,
// then merge the buffers in morsel-index order — which makes the parallel
// output identical to the serial executor's, byte for byte, without any
// cross-worker synchronisation on the hot path.
//
// Cancellation is a monotonically decreasing cut index: Cut(m) declares
// every morsel with index >= m unneeded (LIMIT satisfied by a completed
// prefix, ASK answered, error observed). Workers poll Cancelled cheaply
// and stop claiming or abort in-flight morsels past the cut.
package exec

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a Parallelism option value: 0 (the default) means
// GOMAXPROCS, anything else is clamped to at least 1.
func Workers(parallelism int) int {
	if parallelism > 0 {
		return parallelism
	}
	if parallelism < 0 {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

// Morsels returns the number of size-row morsels covering n rows (the last
// morsel may be short).
func Morsels(n, size int) int {
	return (n + size - 1) / size
}

// Bounds returns the half-open input-row range [lo, hi) of morsel m when n
// rows are partitioned into size-row morsels.
func Bounds(m, size, n int) (lo, hi int) {
	lo = m * size
	hi = lo + size
	if hi > n {
		hi = n
	}
	return lo, hi
}

// At composes a global arrival stamp from a morsel index and a sequence
// number within the morsel. Stamps order exactly like the serial
// executor's arrival order, so they serve as the stable-sort tiebreak of
// parallel ORDER BY paths.
func At(morsel int, seq int64) int64 {
	return int64(morsel)<<32 | seq
}

// Pool schedules morsel indexes [0, morsels) over a bounded set of worker
// goroutines.
type Pool struct {
	workers int
	morsels int
	next    atomic.Int64
	cut     atomic.Int64 // first morsel index that is no longer needed
}

// NewPool sizes a pool; the worker count is capped at the morsel count.
func NewPool(workers, morsels int) *Pool {
	if workers > morsels {
		workers = morsels
	}
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, morsels: morsels}
	p.cut.Store(int64(morsels))
	return p
}

// Workers returns the effective worker count.
func (p *Pool) Workers() int { return p.workers }

// Cut declares every morsel with index >= m unneeded. Cuts only move the
// boundary down, so concurrent cuts compose to the smallest.
func (p *Pool) Cut(m int) {
	for {
		cur := p.cut.Load()
		if int64(m) >= cur {
			return
		}
		if p.cut.CompareAndSwap(cur, int64(m)) {
			return
		}
	}
}

// Cancelled reports whether morsel m is past the cut. Workers poll this
// per row (one atomic load) to abort in-flight morsels early.
func (p *Pool) Cancelled(m int) bool { return int64(m) >= p.cut.Load() }

// Run calls fn(worker, morsel) for every morsel index below the cut,
// spreading the calls over the pool's workers, and blocks until all
// claimed morsels have finished. Each worker's morsel sequence is strictly
// increasing; every morsel is handed to exactly one worker.
func (p *Pool) Run(fn func(worker, morsel int)) {
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				m := int(p.next.Add(1) - 1)
				if m >= p.morsels || p.Cancelled(m) {
					return
				}
				fn(w, m)
			}
		}(w)
	}
	wg.Wait()
}

// Limiter decides when a LIMIT is provably satisfied by a completed prefix
// of morsels. Output is merged in morsel order, so morsels past index j
// are unneeded exactly when morsels 0..j-1 have all completed and together
// buffered at least the target number of output rows. (Callers must not
// use a Limiter when buffered counts can overcount merged output — e.g.
// under DISTINCT, where cross-worker duplicates merge away.)
type Limiter struct {
	mu       sync.Mutex
	need     int
	counts   []int
	done     []bool
	frontier int // first morsel not yet completed
	have     int // rows buffered by the completed prefix
}

// NewLimiter tracks `morsels` morsels against a target of need rows.
func NewLimiter(morsels, need int) *Limiter {
	return &Limiter{need: need, counts: make([]int, morsels), done: make([]bool, morsels)}
}

// Done records that morsel m completed with rows buffered output rows. It
// reports ok=true with the first unneeded morsel index once the completed
// prefix covers the target.
func (l *Limiter) Done(m, rows int) (cut int, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.counts[m] = rows
	l.done[m] = true
	for l.frontier < len(l.done) && l.done[l.frontier] {
		l.have += l.counts[l.frontier]
		l.frontier++
		if l.have >= l.need {
			return l.frontier, true
		}
	}
	return 0, false
}

// --- phased (barrier) execution ---

// ErrCancelled is returned by PhasedPool.Run when the pool was cancelled
// before the phases completed.
var ErrCancelled = errors.New("exec: phased run cancelled")

// Phase is one stage of a phased parallel computation: Morsels work items
// executed by Fn. Consecutive phases of a PhasedPool run are separated by a
// full barrier, which is what the executors' two-phase stages (hash-join
// build→probe, sort run→merge) need: the later phase reads state the
// earlier phase froze.
type Phase struct {
	Morsels int
	Fn      func(worker, morsel int) error
}

// PhasedPool runs a sequence of phases over a bounded worker set with a
// barrier between consecutive phases.
type PhasedPool struct {
	workers   int
	cancelled atomic.Bool
}

// NewPhasedPool sizes a phased pool; workers < 1 is clamped to 1.
func NewPhasedPool(workers int) *PhasedPool {
	if workers < 1 {
		workers = 1
	}
	return &PhasedPool{workers: workers}
}

// Cancel asks the pool to stop: no new morsel starts after the flag is
// observed, in-flight morsels finish, and Run returns ErrCancelled (unless
// a morsel error takes precedence).
func (p *PhasedPool) Cancel() { p.cancelled.Store(true) }

// Cancelled reports whether Cancel was called.
func (p *PhasedPool) Cancelled() bool { return p.cancelled.Load() }

// Run executes the phases in order: no morsel of phase i+1 starts until
// every morsel of phase i has finished. The error returned is the one the
// equivalent serial nested loop would hit first — the smallest (phase,
// morsel) that failed — and once a phase fails, later phases never start.
// With one worker (or a single-morsel phase) the morsels run inline on the
// calling goroutine: no goroutines are spawned, so Parallelism=1 truly
// degenerates to the serial path.
func (p *PhasedPool) Run(phases ...Phase) error {
	for _, ph := range phases {
		if p.cancelled.Load() {
			return ErrCancelled
		}
		if err := p.runPhase(ph); err != nil {
			return err
		}
	}
	if p.cancelled.Load() {
		return ErrCancelled
	}
	return nil
}

func (p *PhasedPool) runPhase(ph Phase) error {
	if ph.Morsels <= 0 {
		return nil
	}
	workers := p.workers
	if workers > ph.Morsels {
		workers = ph.Morsels
	}
	if workers <= 1 {
		for m := 0; m < ph.Morsels; m++ {
			if p.cancelled.Load() {
				return ErrCancelled
			}
			if err := ph.Fn(0, m); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next atomic.Int64
		cut  atomic.Int64
		wg   sync.WaitGroup
		mu   sync.Mutex
		errM = -1
		err  error
	)
	cut.Store(int64(ph.Morsels))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				m := int(next.Add(1) - 1)
				if m >= ph.Morsels || int64(m) >= cut.Load() || p.cancelled.Load() {
					return
				}
				if e := ph.Fn(w, m); e != nil {
					mu.Lock()
					if errM < 0 || m < errM {
						errM, err = m, e
					}
					mu.Unlock()
					// Morsels past the error are unneeded; earlier in-flight
					// morsels still finish and may claim first-error status.
					for {
						c := cut.Load()
						if int64(m) >= c || cut.CompareAndSwap(c, int64(m)) {
							break
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if errM >= 0 {
		return err
	}
	if p.cancelled.Load() {
		return ErrCancelled
	}
	return nil
}

// --- loser-tree k-way merge ---

// LoserTree merges k sorted runs into one globally sorted stream without
// re-sorting: each Next is O(log k) comparisons. Runs are addressed by
// index; items within a run by position. The comparator must be a strict
// ordering of items; when neither item orders before the other, the run
// with the smaller index wins, so the merge is stable across runs.
type LoserTree struct {
	k    int
	node []int32 // node[0] overall winner; node[1..k-1] losers
	pos  []int   // next unconsumed position per run
	lens []int
	less func(runA, idxA, runB, idxB int) bool
}

// NewLoserTree builds a merger over runs with the given lengths. Empty runs
// are allowed; an empty lens slice yields an immediately exhausted tree.
func NewLoserTree(lens []int, less func(runA, idxA, runB, idxB int) bool) *LoserTree {
	t := &LoserTree{k: len(lens), pos: make([]int, len(lens)), lens: lens, less: less}
	if t.k > 1 {
		t.node = make([]int32, t.k)
		t.node[0] = t.build(1)
	}
	return t
}

// build computes the winner of the subtree rooted at an internal node
// (children 2i and 2i+1, leaves at k..2k-1), storing the loser at the node.
func (t *LoserTree) build(node int) int32 {
	if node >= t.k {
		return int32(node - t.k)
	}
	a := t.build(2 * node)
	b := t.build(2*node + 1)
	if t.beats(a, b) {
		t.node[node] = b
		return a
	}
	t.node[node] = a
	return b
}

// beats reports whether run a's head item comes before run b's head item in
// the merged output. Exhausted runs lose to everything; ties resolve to the
// smaller run index.
func (t *LoserTree) beats(a, b int32) bool {
	if t.pos[a] >= t.lens[a] {
		return false
	}
	if t.pos[b] >= t.lens[b] {
		return true
	}
	if t.less(int(a), t.pos[a], int(b), t.pos[b]) {
		return true
	}
	if t.less(int(b), t.pos[b], int(a), t.pos[a]) {
		return false
	}
	return a < b
}

// adjust replays run r (whose head just changed) up its leaf-to-root path.
func (t *LoserTree) adjust(r int) {
	winner := int32(r)
	for i := (r + t.k) / 2; i > 0; i /= 2 {
		if t.beats(t.node[i], winner) {
			winner, t.node[i] = t.node[i], winner
		}
	}
	t.node[0] = winner
}

// Next returns the (run, position) of the globally next item and advances
// past it, or (-1, -1) once every run is exhausted.
func (t *LoserTree) Next() (run, idx int) {
	switch t.k {
	case 0:
		return -1, -1
	case 1:
		if t.pos[0] >= t.lens[0] {
			return -1, -1
		}
		t.pos[0]++
		return 0, t.pos[0] - 1
	}
	w := t.node[0]
	if t.pos[w] >= t.lens[w] {
		return -1, -1
	}
	idx = t.pos[w]
	t.pos[w]++
	t.adjust(int(w))
	return int(w), idx
}
