// Package exec is the shared morsel-driven scheduler behind the SQL and
// SPARQL executors' intra-query parallelism. A query's driving input is
// partitioned into fixed-size contiguous morsels in serial enumeration
// order; a bounded worker pool claims morsel indexes from an atomic
// counter, so each worker processes a strictly increasing sequence of
// morsels and every morsel is processed by exactly one worker. Executors
// keep all mutable scratch state per worker and buffer output per morsel,
// then merge the buffers in morsel-index order — which makes the parallel
// output identical to the serial executor's, byte for byte, without any
// cross-worker synchronisation on the hot path.
//
// Cancellation is a monotonically decreasing cut index: Cut(m) declares
// every morsel with index >= m unneeded (LIMIT satisfied by a completed
// prefix, ASK answered, error observed). Workers poll Cancelled cheaply
// and stop claiming or abort in-flight morsels past the cut.
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a Parallelism option value: 0 (the default) means
// GOMAXPROCS, anything else is clamped to at least 1.
func Workers(parallelism int) int {
	if parallelism > 0 {
		return parallelism
	}
	if parallelism < 0 {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

// Morsels returns the number of size-row morsels covering n rows (the last
// morsel may be short).
func Morsels(n, size int) int {
	return (n + size - 1) / size
}

// Bounds returns the half-open input-row range [lo, hi) of morsel m when n
// rows are partitioned into size-row morsels.
func Bounds(m, size, n int) (lo, hi int) {
	lo = m * size
	hi = lo + size
	if hi > n {
		hi = n
	}
	return lo, hi
}

// At composes a global arrival stamp from a morsel index and a sequence
// number within the morsel. Stamps order exactly like the serial
// executor's arrival order, so they serve as the stable-sort tiebreak of
// parallel ORDER BY paths.
func At(morsel int, seq int64) int64 {
	return int64(morsel)<<32 | seq
}

// Pool schedules morsel indexes [0, morsels) over a bounded set of worker
// goroutines.
type Pool struct {
	workers int
	morsels int
	next    atomic.Int64
	cut     atomic.Int64 // first morsel index that is no longer needed
}

// NewPool sizes a pool; the worker count is capped at the morsel count.
func NewPool(workers, morsels int) *Pool {
	if workers > morsels {
		workers = morsels
	}
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, morsels: morsels}
	p.cut.Store(int64(morsels))
	return p
}

// Workers returns the effective worker count.
func (p *Pool) Workers() int { return p.workers }

// Cut declares every morsel with index >= m unneeded. Cuts only move the
// boundary down, so concurrent cuts compose to the smallest.
func (p *Pool) Cut(m int) {
	for {
		cur := p.cut.Load()
		if int64(m) >= cur {
			return
		}
		if p.cut.CompareAndSwap(cur, int64(m)) {
			return
		}
	}
}

// Cancelled reports whether morsel m is past the cut. Workers poll this
// per row (one atomic load) to abort in-flight morsels early.
func (p *Pool) Cancelled(m int) bool { return int64(m) >= p.cut.Load() }

// Run calls fn(worker, morsel) for every morsel index below the cut,
// spreading the calls over the pool's workers, and blocks until all
// claimed morsels have finished. Each worker's morsel sequence is strictly
// increasing; every morsel is handed to exactly one worker.
func (p *Pool) Run(fn func(worker, morsel int)) {
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				m := int(p.next.Add(1) - 1)
				if m >= p.morsels || p.Cancelled(m) {
					return
				}
				fn(w, m)
			}
		}(w)
	}
	wg.Wait()
}

// Limiter decides when a LIMIT is provably satisfied by a completed prefix
// of morsels. Output is merged in morsel order, so morsels past index j
// are unneeded exactly when morsels 0..j-1 have all completed and together
// buffered at least the target number of output rows. (Callers must not
// use a Limiter when buffered counts can overcount merged output — e.g.
// under DISTINCT, where cross-worker duplicates merge away.)
type Limiter struct {
	mu       sync.Mutex
	need     int
	counts   []int
	done     []bool
	frontier int // first morsel not yet completed
	have     int // rows buffered by the completed prefix
}

// NewLimiter tracks `morsels` morsels against a target of need rows.
func NewLimiter(morsels, need int) *Limiter {
	return &Limiter{need: need, counts: make([]int, morsels), done: make([]bool, morsels)}
}

// Done records that morsel m completed with rows buffered output rows. It
// reports ok=true with the first unneeded morsel index once the completed
// prefix covers the target.
func (l *Limiter) Done(m, rows int) (cut int, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.counts[m] = rows
	l.done[m] = true
	for l.frontier < len(l.done) && l.done[l.frontier] {
		l.have += l.counts[l.frontier]
		l.frontier++
		if l.have >= l.need {
			return l.frontier, true
		}
	}
	return 0, false
}
