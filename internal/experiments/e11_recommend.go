package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"crosse/internal/kb"
	"crosse/internal/rdf"
	"crosse/internal/recommend"
)

// RunE11 measures the peer-networking services built on the KB layer
// (Sec. I-B.b vision): peer-similarity ranking and statement
// recommendation as the community grows. Expected shape: both scale with
// (users × statements) — they scan the belief matrix — and stay
// interactive (milliseconds) at community sizes a scientific platform
// sees; recommendation quality is exercised functionally in
// internal/recommend tests.
func RunE11(w io.Writer, quick bool) error {
	header(w, "E11", "Peer discovery and recommendation scaling")
	sizes := []struct{ users, stmts int }{
		{10, 200}, {50, 500}, {100, 1000},
	}
	if quick {
		sizes = []struct{ users, stmts int }{{5, 100}, {20, 200}}
	}

	tab := newTable("users", "statements", "peer ranking", "recommendations", "recs found")
	for _, sz := range sizes {
		p := kb.NewPlatform()
		for u := 0; u < sz.users; u++ {
			if err := p.RegisterUser(fmt.Sprintf("user%03d", u)); err != nil {
				return err
			}
		}
		// Each statement is owned by some user; ~20% of random users import
		// each statement, giving a dense, asymmetric belief matrix.
		rng := rand.New(rand.NewSource(63))
		for i := 0; i < sz.stmts; i++ {
			owner := fmt.Sprintf("user%03d", i%sz.users)
			id, err := p.Insert(owner, rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("%se%d", kb.SMG, i)),
				P: rdf.NewIRI(kb.SMG + "isA"),
				O: rdf.NewIRI(kb.SMG + "HazardousWaste"),
			})
			if err != nil {
				return err
			}
			for u := 0; u < sz.users/5; u++ {
				name := fmt.Sprintf("user%03d", rng.Intn(sz.users))
				if name != owner {
					if err := p.Import(name, id); err != nil {
						return err
					}
				}
			}
		}

		var peerTime, recTime time.Duration
		var recCount int
		peerTime, err := medianOf(3, func() error {
			recommend.PeersByBeliefs(p, "user000", 10)
			return nil
		})
		if err != nil {
			return err
		}
		recTime, err = medianOf(3, func() error {
			recCount = len(recommend.RecommendStatements(p, "user000", 10))
			return nil
		})
		if err != nil {
			return err
		}
		tab.add(sz.users, sz.stmts, peerTime, recTime, recCount)
	}
	tab.write(w)
	return nil
}
