package experiments

import (
	"fmt"
	"io"
	"time"

	"crosse/internal/sesql"
)

// RunE2 measures SESQL parse throughput for each enrichment clause of the
// Fig. 5 grammar, plus plain SQL as the baseline: the SQP stage must be a
// negligible share of query latency for the architecture to make sense.
func RunE2(w io.Writer, quick bool) error {
	header(w, "E2", "SESQL parser throughput (Fig. 5 grammar)")
	iters := 20000
	if quick {
		iters = 2000
	}

	queries := append([]struct{ Name, Query string }{
		{"plain SQL", `SELECT elem_name, landfill_name FROM elem_contained WHERE landfill_name = 'a'`},
	}, paperExampleQueries()...)

	tab := newTable("query form", "parses", "total", "per parse", "parses/sec")
	for _, q := range queries {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := sesql.Parse(q.Query); err != nil {
				return fmt.Errorf("%s: %w", q.Name, err)
			}
		}
		total := time.Since(t0)
		per := total / time.Duration(iters)
		tab.add(q.Name, iters, total, per, fmt.Sprintf("%.0f", float64(iters)/total.Seconds()))
	}
	tab.write(w)
	return nil
}
