package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, true); err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, e.ID) {
				t.Errorf("%s output missing header:\n%s", e.ID, out)
			}
			if len(strings.TrimSpace(out)) < 80 {
				t.Errorf("%s output suspiciously short:\n%s", e.ID, out)
			}
		})
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("E1"); !ok {
		t.Error("E1 must exist")
	}
	if _, ok := Find("E99"); ok {
		t.Error("E99 must not exist")
	}
}

func TestE1ContainsPaperResults(t *testing.T) {
	var buf bytes.Buffer
	if err := RunE1(&buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Golden checks on the functional reproduction.
	for _, want := range []string{
		"4.1 SCHEMAEXTENSION",
		"dangerLevel",
		"Mercury",
		"4.5 REPLACECONSTANT",
		"4.6 REPLACEVARIABLE",
		"inCountry",
		"Italy",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E1 output missing %q", want)
		}
	}
}

func TestMedianOf(t *testing.T) {
	n := 0
	d, err := medianOf(5, func() error { n++; return nil })
	if err != nil || n != 5 || d < 0 {
		t.Errorf("medianOf: n=%d d=%v err=%v", n, d, err)
	}
	if _, err := medianOf(0, func() error { return nil }); err != nil {
		t.Error("k<1 must clamp, not fail")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := newTable("a", "bb")
	tab.add("x", 12)
	var buf bytes.Buffer
	tab.write(&buf)
	out := buf.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "12") || !strings.Contains(out, "--") {
		t.Errorf("table output:\n%s", out)
	}
}
