package experiments

import (
	"fmt"
	"io"
	"time"

	"crosse/internal/kb"
	"crosse/internal/rdf"
	"crosse/internal/sparql"
)

// RunE8 measures the crowdsourcing layer (Sec. III-A): one expert publishes
// M statements, N peers import them all, then each queries her own view.
// Expected shape: import cost is linear in statements imported; per-user
// view queries stay independent of the number of peers (views are
// materialised per user), which is what makes the "accept as your own"
// model scale socially.
func RunE8(w io.Writer, quick bool) error {
	header(w, "E8", "Crowdsourced belief import fan-out")
	userCounts := []int{5, 20, 50}
	statements := 2000
	if quick {
		userCounts = []int{3, 10}
		statements = 400
	}

	tab := newTable("peers", "statements", "publish", "import all (total)", "import/peer", "view query")
	for _, users := range userCounts {
		p := kb.NewPlatform()
		if err := p.RegisterUser("expert"); err != nil {
			return err
		}
		t0 := time.Now()
		for i := 0; i < statements; i++ {
			_, err := p.Insert("expert", rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("http://smartground.eu/onto#elem%d", i)),
				P: rdf.NewIRI("http://smartground.eu/onto#dangerLevel"),
				O: rdf.NewLiteral("high"),
			})
			if err != nil {
				return err
			}
		}
		publish := time.Since(t0)

		t0 = time.Now()
		for u := 0; u < users; u++ {
			name := fmt.Sprintf("peer%02d", u)
			if err := p.RegisterUser(name); err != nil {
				return err
			}
			if _, err := p.ImportFrom(name, "expert", nil); err != nil {
				return err
			}
		}
		importAll := time.Since(t0)

		// Each peer queries her own materialised view.
		view, err := p.View("peer00")
		if err != nil {
			return err
		}
		q := `SELECT ?x WHERE { ?x <http://smartground.eu/onto#dangerLevel> "high" } LIMIT 10`
		viewQuery, err := medianOf(5, func() error {
			_, err := sparql.Eval(view, q)
			return err
		})
		if err != nil {
			return err
		}

		tab.add(users, statements, publish, importAll, importAll/time.Duration(users), viewQuery)
	}
	tab.write(w)
	return nil
}
