package experiments

import (
	"fmt"
	"io"
	"strings"

	"crosse/internal/engine"
)

// RunE1 reproduces the paper's worked examples 4.1-4.6 end to end on the
// Fig. 3 fragment and prints each result table — the functional ground
// truth every other experiment builds on.
func RunE1(w io.Writer, quick bool) error {
	header(w, "E1", "Functional reproduction of paper examples 4.1-4.6")
	enr, err := paperFixture()
	if err != nil {
		return err
	}
	for _, ex := range paperExampleQueries() {
		fmt.Fprintf(w, "\n--- Example %s ---\n", ex.Name)
		fmt.Fprintln(w, strings.TrimSpace(ex.Query))
		res, err := enr.Query("alice", ex.Query)
		if err != nil {
			return fmt.Errorf("example %s: %w", ex.Name, err)
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, engine.FormatTable(res))
	}
	return nil
}
