package experiments

import (
	"crosse/internal/core"
	"crosse/internal/dataset"
	"crosse/internal/engine"
	"crosse/internal/kb"
	"crosse/internal/rdf"
)

// paperFixture reproduces the paper's running example databank (Fig. 3
// fragment) and alice's contextual knowledge, exactly as the worked
// examples 4.1-4.6 assume.
func paperFixture() (*core.Enricher, error) {
	db := engine.Open()
	if _, err := db.ExecScript(`
		CREATE TABLE landfill (name TEXT PRIMARY KEY, city TEXT);
		CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT);
		INSERT INTO landfill VALUES ('a', 'Torino'), ('b', 'Milano'), ('c', 'Lyon');
		INSERT INTO elem_contained VALUES
			('Mercury', 'a'), ('Lead', 'a'), ('Zinc', 'a'),
			('Gold', 'b'), ('Mercury', 'b'),
			('Lead', 'c');
	`); err != nil {
		return nil, err
	}
	p := kb.NewPlatform()
	if err := p.RegisterUser("alice"); err != nil {
		return nil, err
	}
	smg := func(local string) rdf.Term { return rdf.NewIRI(core.DefaultIRIPrefix + local) }
	facts := []rdf.Triple{
		{S: smg("Mercury"), P: smg("dangerLevel"), O: rdf.NewLiteral("high")},
		{S: smg("Lead"), P: smg("dangerLevel"), O: rdf.NewLiteral("high")},
		{S: smg("Zinc"), P: smg("dangerLevel"), O: rdf.NewLiteral("low")},
		{S: smg("Mercury"), P: smg("isA"), O: smg("HazardousWaste")},
		{S: smg("Lead"), P: smg("isA"), O: smg("HazardousWaste")},
		{S: smg("Asbestos"), P: smg("isA"), O: smg("HazardousWaste")},
		{S: smg("Torino"), P: smg("inCountry"), O: smg("Italy")},
		{S: smg("Milano"), P: smg("inCountry"), O: smg("Italy")},
		{S: smg("Lyon"), P: smg("inCountry"), O: smg("France")},
		{S: smg("Mercury"), P: smg("oreAssemblage"), O: smg("Lead")},
		{S: smg("Lead"), P: smg("oreAssemblage"), O: smg("Zinc")},
	}
	for _, f := range facts {
		if _, err := p.Insert("alice", f); err != nil {
			return nil, err
		}
	}
	if err := dataset.RegisterDangerQuery(p); err != nil {
		return nil, err
	}
	return core.New(db, p, nil), nil
}

// scaledFixture builds a synthetic databank of the given size plus a user
// ontology, for the performance experiments.
func scaledFixture(landfills, extraKB int) (*core.Enricher, error) {
	db := engine.Open()
	cfg := dataset.DefaultConfig()
	cfg.Landfills = landfills
	cfg.Analyses = landfills * 2
	if err := dataset.Populate(db, cfg); err != nil {
		return nil, err
	}
	p := kb.NewPlatform()
	if err := p.RegisterUser("alice"); err != nil {
		return nil, err
	}
	ocfg := dataset.DefaultOntology()
	ocfg.ExtraTriples = extraKB
	if _, err := dataset.PopulateOntology(p, "alice", ocfg); err != nil {
		return nil, err
	}
	if err := dataset.RegisterDangerQuery(p); err != nil {
		return nil, err
	}
	return core.New(db, p, nil), nil
}

// paperExampleQueries are the six worked examples of Sec. IV, in order.
func paperExampleQueries() []struct{ Name, Query string } {
	return []struct{ Name, Query string }{
		{"4.1 SCHEMAEXTENSION", `SELECT elem_name, landfill_name
FROM elem_contained
WHERE landfill_name = 'a'
ENRICH
SCHEMAEXTENSION( elem_name, dangerLevel)`},
		{"4.2 SCHEMAREPLACEMENT", `SELECT name, city
FROM landfill
ENRICH
SCHEMAREPLACEMENT(city, inCountry)`},
		{"4.3 BOOLSCHEMAEXTENSION", `SELECT elem_name
FROM elem_contained
WHERE landfill_name = 'a'
ENRICH
BOOLSCHEMAEXTENSION( elem_name, isA, HazardousWaste)`},
		{"4.4 BOOLSCHEMAREPLACEMENT", `SELECT name, city
FROM landfill
ENRICH
BOOLSCHEMAREPLACEMENT(city, inCountry, Italy)`},
		{"4.5 REPLACECONSTANT", `SELECT landfill_name
FROM elem_contained
WHERE ${elem_name = HazardousWaste:cond1}
ENRICH
REPLACECONSTANT(cond1, HazardousWaste, dangerQuery)`},
		{"4.6 REPLACEVARIABLE", `SELECT Elecond1.landfill_name AS l_name1,
 Elecond2.landfill_name AS l_name2,
 Elecond1.elem_name
FROM elem_contained AS Elecond1,
 elem_contained AS Elecond2
WHERE ${ Elecond1.elem_name <> Elecond2.elem_name:cond1} AND
 Elecond1.elem_name = Elecond2.elem_name
ENRICH
REPLACEVARIABLE(cond1, Elecond2.elem_name, oreAssemblage)`},
	}
}

// scaledEnrichmentQueries exercise each strategy on the synthetic databank.
func scaledEnrichmentQueries() []struct{ Name, Query string } {
	return []struct{ Name, Query string }{
		{"SCHEMAEXTENSION", `SELECT elem_name, landfill_name FROM elem_contained
ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)`},
		{"SCHEMAREPLACEMENT", `SELECT name, city FROM landfill
ENRICH SCHEMAREPLACEMENT(city, inCountry)`},
		{"BOOLSCHEMAEXTENSION", `SELECT elem_name, landfill_name FROM elem_contained
ENRICH BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)`},
		{"BOOLSCHEMAREPLACEMENT", `SELECT name, city FROM landfill
ENRICH BOOLSCHEMAREPLACEMENT(city, inCountry, country_00)`},
		{"REPLACECONSTANT", `SELECT landfill_name FROM elem_contained
WHERE ${elem_name = HazardousWaste:c1}
ENRICH REPLACECONSTANT(c1, HazardousWaste, dangerQuery)`},
		{"REPLACEVARIABLE", `SELECT landfill_name FROM elem_contained
WHERE ${elem_name = 'element_000':c1}
ENRICH REPLACEVARIABLE(c1, elem_name, oreAssemblage)`},
	}
}
