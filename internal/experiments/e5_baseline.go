package experiments

import (
	"io"

	"crosse/internal/engine"
	"crosse/internal/rdf"
	"crosse/internal/sqlval"
)

// RunE5 compares SESQL enrichment against the hand-written alternative the
// paper's architecture implicitly competes with: manually exporting the
// user's contextual knowledge into a relational table and writing the join
// by hand. Expected shape: hand-written wins on raw latency (it skips
// SPARQL + temp tables) by a modest constant factor, while SESQL's cost
// stays within the same order of magnitude and buys per-user context
// without any manual ETL — the paper's trade-off.
func RunE5(w io.Writer, quick bool) error {
	header(w, "E5", "Enrichment overhead vs hand-written SQL baseline")
	sizes := []int{100, 400, 1600}
	if quick {
		sizes = []int{50, 150}
	}
	reps := 5
	if quick {
		reps = 3
	}

	tab := newTable("landfills", "rows", "plain SQL", "SESQL enrich", "hand-written join", "SESQL/hand ratio")
	for _, n := range sizes {
		enr, err := scaledFixture(n, 0)
		if err != nil {
			return err
		}
		rowCount, err := countRows(enr.DB, "elem_contained")
		if err != nil {
			return err
		}

		// (a) plain SQL, no context.
		plain, err := medianOf(reps, func() error {
			_, err := enr.DB.Query(`SELECT elem_name, landfill_name FROM elem_contained`)
			return err
		})
		if err != nil {
			return err
		}

		// (b) SESQL schema extension.
		sesqlTime, err := medianOf(reps, func() error {
			_, err := enr.Query("alice", `SELECT elem_name, landfill_name FROM elem_contained
ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)`)
			return err
		})
		if err != nil {
			return err
		}

		// (c) hand-written: manually materialise dangerLevel into a table
		// (the ETL the user would have to redo at every KB change), then a
		// plain LEFT JOIN. Only the join is timed: the favourable case.
		view, err := enr.Platform.View("alice")
		if err != nil {
			return err
		}
		if err := materializeDangerTable(enr.DB, view); err != nil {
			return err
		}
		hand, err := medianOf(reps, func() error {
			_, err := enr.DB.Query(`SELECT e.elem_name, e.landfill_name, d.level
FROM elem_contained e LEFT JOIN danger d ON e.elem_name = d.elem`)
			return err
		})
		if err != nil {
			return err
		}

		ratio := float64(sesqlTime) / float64(hand)
		tab.add(n, rowCount, plain, sesqlTime, hand, ratio)
	}
	tab.write(w)
	return nil
}

func countRows(db *engine.DB, tbl string) (int, error) {
	r, err := db.Query("SELECT COUNT(*) FROM " + tbl)
	if err != nil {
		return 0, err
	}
	return int(r.Rows[0][0].Int()), nil
}

// materializeDangerTable exports the user's dangerLevel knowledge into a
// relational table, emulating the manual pipeline SESQL replaces.
func materializeDangerTable(db *engine.DB, view rdf.Graph) error {
	if _, err := db.Exec(`DROP TABLE IF EXISTS danger`); err != nil {
		return err
	}
	if _, err := db.Exec(`CREATE TABLE danger (elem TEXT, level TEXT)`); err != nil {
		return err
	}
	tab, err := db.Catalog().Table("danger")
	if err != nil {
		return err
	}
	prop := rdf.NewIRI("http://smartground.eu/onto#dangerLevel")
	var insertErr error
	view.ForEach(rdf.Pattern{P: prop}, func(t rdf.Triple) bool {
		elem := t.S.Value
		if i := lastSep(elem); i >= 0 {
			elem = elem[i+1:]
		}
		insertErr = tab.Insert([]sqlval.Value{sqlval.NewString(elem), sqlval.NewString(t.O.Value)})
		return insertErr == nil
	})
	return insertErr
}

func lastSep(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '#' || s[i] == '/' {
			return i
		}
	}
	return -1
}
