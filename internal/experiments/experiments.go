// Package experiments implements the measurement study of EXPERIMENTS.md.
// The paper publishes no quantitative evaluation, so these experiments (a)
// reproduce every functional artifact — each figure and worked example — and
// (b) measure the system the way a database-systems evaluation would:
// enrichment overhead against hand-written baselines, scaling in relation
// and knowledge-base size, pipeline stage breakdown, federation cost, and
// crowdsourcing fan-out. Each experiment prints the table EXPERIMENTS.md
// records.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Experiment is one reproducible measurement.
type Experiment struct {
	ID    string
	Title string
	// Run executes the experiment, writing its table to w. quick shrinks
	// the parameter sweep so the whole suite stays test-friendly.
	Run func(w io.Writer, quick bool) error
}

// All returns the experiments in ID order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Functional reproduction of paper examples 4.1-4.6", Run: RunE1},
		{ID: "E2", Title: "SESQL parser throughput (Fig. 5 grammar)", Run: RunE2},
		{ID: "E3", Title: "Triple store scaling (Fig. 4 substrate)", Run: RunE3},
		{ID: "E4", Title: "Pipeline stage breakdown (Fig. 6)", Run: RunE4},
		{ID: "E5", Title: "Enrichment overhead vs hand-written SQL baseline", Run: RunE5},
		{ID: "E6", Title: "Scaling with knowledge-base size", Run: RunE6},
		{ID: "E7", Title: "FDW federation: local vs remote, pushdown", Run: RunE7},
		{ID: "E8", Title: "Crowdsourced belief import fan-out", Run: RunE8},
		{ID: "E9", Title: "Relational engine micro-benchmarks", Run: RunE9},
		{ID: "E10", Title: "SPARQL engine micro-benchmarks", Run: RunE10},
		{ID: "E11", Title: "Peer discovery and recommendation scaling", Run: RunE11},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// medianOf runs fn k times and reports the median duration.
func medianOf(k int, fn func() error) (time.Duration, error) {
	if k < 1 {
		k = 1
	}
	times := make([]time.Duration, 0, k)
	for i := 0; i < k; i++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		times = append(times, time.Since(t0))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], nil
}

// table is a tiny aligned-column writer for experiment output.
type table struct {
	headers []string
	rows    [][]string
}

func newTable(headers ...string) *table { return &table{headers: headers} }

func (t *table) add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case time.Duration:
			row[i] = formatDuration(v)
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func formatDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i, wd := range widths {
		sep[i] = repeat('-', wd)
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func repeat(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}

func header(w io.Writer, id, title string) {
	fmt.Fprintf(w, "\n=== %s: %s ===\n", id, title)
}
