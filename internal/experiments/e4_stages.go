package experiments

import (
	"fmt"
	"io"

	"crosse/internal/core"
)

// RunE4 breaks SESQL latency down into the Fig. 6 stages — SQP parse, base
// SQL on the main platform, SPARQL on the user KB, JoinManager, final SQL
// on the support database — for each of the six enrichment strategies.
// Expected shape: parse ≪ everything else; the join and base-SQL stages
// dominate; WHERE-rewriting strategies pay extra join time proportional to
// candidate-set size.
func RunE4(w io.Writer, quick bool) error {
	header(w, "E4", "Pipeline stage breakdown (Fig. 6)")
	landfills := 400
	if quick {
		landfills = 80
	}
	enr, err := scaledFixture(landfills, 0)
	if err != nil {
		return err
	}

	tab := newTable("strategy", "parse", "base SQL", "SPARQL", "join", "final SQL", "total", "rows")
	for _, q := range scaledEnrichmentQueries() {
		var stats *core.Stats
		med, err := medianOf(3, func() error {
			_, s, err := enr.QueryStats("alice", q.Query)
			stats = s
			return err
		})
		if err != nil {
			return fmt.Errorf("%s: %w", q.Name, err)
		}
		_ = med
		tab.add(q.Name, stats.Parse, stats.BaseSQL, stats.SPARQL, stats.Join, stats.FinalSQL,
			stats.Total(), stats.FinalRows)
	}
	tab.write(w)
	fmt.Fprintln(w, "\n(parse is the SQP; SPARQL runs on the user's KB view; join is the")
	fmt.Fprintln(w, " JoinManager incl. temp-table materialisation; final SQL runs on the")
	fmt.Fprintln(w, " temporary support database, per Fig. 6)")
	return nil
}
