package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"crosse/internal/rdf"
	"crosse/internal/sparql"
)

// RunE10 measures the SPARQL engine over growing stores: a two-pattern BGP
// join, a FILTER query, and a transitive property path — each both through
// the full parse+compile+eval pipeline and as a pre-compiled plan (the form
// the enrichment pipeline's QueryCache executes on a hit). Expected shape:
// the BGP join is driven by the selective pattern (near-flat), the filter
// scan grows linearly with matching triples, the path closure grows with
// reachable-set size, and the plan column tracks the eval column closely
// since planning is a few microseconds — the cache's win is architectural
// (no per-call lexing/parsing), not the bulk of query latency.
func RunE10(w io.Writer, quick bool) error {
	header(w, "E10", "SPARQL engine micro-benchmarks")
	sizes := []int{2000, 10000, 50000}
	if quick {
		sizes = []int{1000, 5000}
	}
	reps := 5
	if quick {
		reps = 3
	}

	const ns = "http://smartground.eu/onto#"
	queries := []struct{ name, q string }{
		{"BGP join", `SELECT ?x ?l WHERE { ?x <` + ns + `isA> <` + ns + `Hazard> . ?x <` + ns + `level> ?l }`},
		{"filter", `SELECT ?x WHERE { ?x <` + ns + `level> ?l . FILTER (?l > 7) }`},
		{"path +", `SELECT ?c WHERE { <` + ns + `class0> <` + ns + `sub>+ ?c }`},
	}

	cols := append([]string{"triples"}, qnames(queries)...)
	cols = append(cols, "BGP join (plan)")
	tab := newTable(cols...)
	for _, n := range sizes {
		st := rdf.NewStore()
		rng := rand.New(rand.NewSource(9))
		// 10% hazard facts, everything gets a level, plus a deep subclass chain.
		for i := 0; i < n; i++ {
			s := rdf.NewIRI(fmt.Sprintf("%selem%d", ns, i))
			if i%10 == 0 {
				st.Add(rdf.Triple{S: s, P: rdf.NewIRI(ns + "isA"), O: rdf.NewIRI(ns + "Hazard")})
			}
			st.Add(rdf.Triple{S: s, P: rdf.NewIRI(ns + "level"),
				O: rdf.NewTypedLiteral(fmt.Sprint(rng.Intn(10)), rdf.XSDInteger)})
		}
		for i := 0; i < 60; i++ {
			st.Add(rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("%sclass%d", ns, i)),
				P: rdf.NewIRI(ns + "sub"),
				O: rdf.NewIRI(fmt.Sprintf("%sclass%d", ns, i+1)),
			})
		}

		cells := []any{st.Len()}
		for _, q := range queries {
			med, err := medianOf(reps, func() error {
				_, err := sparql.Eval(st, q.q)
				return err
			})
			if err != nil {
				return fmt.Errorf("%s: %w", q.name, err)
			}
			cells = append(cells, med)
		}

		// The cached-plan path: compile the BGP join once, evaluate per rep.
		parsed, err := sparql.Parse(queries[0].q)
		if err != nil {
			return err
		}
		plan, err := sparql.Compile(parsed)
		if err != nil {
			return err
		}
		med, err := medianOf(reps, func() error {
			_, err := plan.Eval(st)
			return err
		})
		if err != nil {
			return fmt.Errorf("BGP join (plan): %w", err)
		}
		cells = append(cells, med)
		tab.add(cells...)
	}
	tab.write(w)
	return nil
}

func qnames(qs []struct{ name, q string }) []string {
	out := make([]string, len(qs))
	for i, q := range qs {
		out[i] = q.name
	}
	return out
}
