package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"crosse/internal/rdf"
	"crosse/internal/sparql"
)

// RunE10 measures the SPARQL engine over growing stores: a two-pattern BGP
// join, a FILTER query, and a transitive property path. Expected shape: the
// BGP join is driven by the selective pattern (near-flat), the filter scan
// grows linearly with matching triples, and the path closure grows with
// reachable-set size.
func RunE10(w io.Writer, quick bool) error {
	header(w, "E10", "SPARQL engine micro-benchmarks")
	sizes := []int{2000, 10000, 50000}
	if quick {
		sizes = []int{1000, 5000}
	}
	reps := 5
	if quick {
		reps = 3
	}

	const ns = "http://smartground.eu/onto#"
	queries := []struct{ name, q string }{
		{"BGP join", `SELECT ?x ?l WHERE { ?x <` + ns + `isA> <` + ns + `Hazard> . ?x <` + ns + `level> ?l }`},
		{"filter", `SELECT ?x WHERE { ?x <` + ns + `level> ?l . FILTER (?l > 7) }`},
		{"path +", `SELECT ?c WHERE { <` + ns + `class0> <` + ns + `sub>+ ?c }`},
	}

	tab := newTable(append([]string{"triples"}, qnames(queries)...)...)
	for _, n := range sizes {
		st := rdf.NewStore()
		rng := rand.New(rand.NewSource(9))
		// 10% hazard facts, everything gets a level, plus a deep subclass chain.
		for i := 0; i < n; i++ {
			s := rdf.NewIRI(fmt.Sprintf("%selem%d", ns, i))
			if i%10 == 0 {
				st.Add(rdf.Triple{S: s, P: rdf.NewIRI(ns + "isA"), O: rdf.NewIRI(ns + "Hazard")})
			}
			st.Add(rdf.Triple{S: s, P: rdf.NewIRI(ns + "level"),
				O: rdf.NewTypedLiteral(fmt.Sprint(rng.Intn(10)), rdf.XSDInteger)})
		}
		for i := 0; i < 60; i++ {
			st.Add(rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("%sclass%d", ns, i)),
				P: rdf.NewIRI(ns + "sub"),
				O: rdf.NewIRI(fmt.Sprintf("%sclass%d", ns, i+1)),
			})
		}

		cells := []any{st.Len()}
		for _, q := range queries {
			med, err := medianOf(reps, func() error {
				_, err := sparql.Eval(st, q.q)
				return err
			})
			if err != nil {
				return fmt.Errorf("%s: %w", q.name, err)
			}
			cells = append(cells, med)
		}
		tab.add(cells...)
	}
	tab.write(w)
	return nil
}

func qnames(qs []struct{ name, q string }) []string {
	out := make([]string, len(qs))
	for i, q := range qs {
		out[i] = q.name
	}
	return out
}
