package experiments

import (
	"io"

	"crosse/internal/core"
)

// RunE6 scales the user's knowledge base (padding it with unrelated facts)
// while holding the databank fixed, and measures SESQL latency. Expected
// shape: thanks to POS indexing, the SPARQL stage depends on the matching
// triples, not the total KB size, so latency should stay near-flat while
// the KB grows by orders of magnitude — the property that makes
// crowdsourced (ever-growing) KBs viable.
func RunE6(w io.Writer, quick bool) error {
	header(w, "E6", "Scaling with knowledge-base size")
	kbSizes := []int{0, 1000, 10000, 100000}
	if quick {
		kbSizes = []int{0, 1000, 5000}
	}
	landfills := 200
	if quick {
		landfills = 60
	}
	reps := 5
	if quick {
		reps = 3
	}

	const query = `SELECT elem_name, landfill_name FROM elem_contained
ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)
BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)`

	tab := newTable("KB triples", "SESQL latency", "SPARQL stage", "join stage", "rows")
	for _, extra := range kbSizes {
		enr, err := scaledFixture(landfills, extra)
		if err != nil {
			return err
		}
		var stats *core.Stats
		med, err := medianOf(reps, func() error {
			_, s, err := enr.QueryStats("alice", query)
			stats = s
			return err
		})
		if err != nil {
			return err
		}
		tab.add(enr.Platform.ViewSize("alice"), med, stats.SPARQL, stats.Join, stats.FinalRows)
	}
	tab.write(w)
	return nil
}
