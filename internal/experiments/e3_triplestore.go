package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"crosse/internal/rdf"
)

// RunE3 measures the Fig. 4 substrate: triple insert throughput and the
// three indexed lookup shapes as the store grows. The expectation the
// architecture relies on is that point lookups stay roughly flat while the
// store grows (hash indexes), so per-user KBs can grow without degrading
// enrichment.
func RunE3(w io.Writer, quick bool) error {
	header(w, "E3", "Triple store scaling (Fig. 4 substrate)")
	sizes := []int{1000, 10000, 100000}
	if quick {
		sizes = []int{1000, 5000}
	}

	tab := newTable("triples", "insert total", "insert/triple", "S?? lookup", "?PO lookup", "?P? match (rows)")
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(42))
		st := rdf.NewStore()
		subjects := n / 10
		triples := make([]rdf.Triple, n)
		for i := range triples {
			triples[i] = rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("http://x/s%d", rng.Intn(subjects))),
				P: rdf.NewIRI(fmt.Sprintf("http://x/p%d", rng.Intn(20))),
				O: rdf.NewIRI(fmt.Sprintf("http://x/o%d", rng.Intn(n))),
			}
		}
		t0 := time.Now()
		st.AddAll(triples)
		insert := time.Since(t0)

		probeS := rdf.NewIRI("http://x/s1")
		probeP := rdf.NewIRI("http://x/p1")
		probeO := triples[n/2].O

		lookups := 1000
		t0 = time.Now()
		for i := 0; i < lookups; i++ {
			st.Match(rdf.Pattern{S: probeS})
		}
		sLookup := time.Since(t0) / time.Duration(lookups)

		t0 = time.Now()
		for i := 0; i < lookups; i++ {
			st.Match(rdf.Pattern{P: probeP, O: probeO})
		}
		poLookup := time.Since(t0) / time.Duration(lookups)

		t0 = time.Now()
		rows := st.Count(rdf.Pattern{P: probeP})
		pMatch := time.Since(t0)

		tab.add(n, insert, insert/time.Duration(n), sLookup, poLookup,
			fmt.Sprintf("%s (%d)", formatDuration(pMatch), rows))
	}
	tab.write(w)
	return nil
}
