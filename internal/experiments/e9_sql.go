package experiments

import (
	"fmt"
	"io"

	"crosse/internal/dataset"
	"crosse/internal/engine"
)

// RunE9 sanity-checks the relational substrate itself: scan, filter,
// hash join, and aggregation latency as the databank grows. These numbers
// calibrate every other experiment (SESQL latency can only be judged
// against what the bare engine costs).
func RunE9(w io.Writer, quick bool) error {
	header(w, "E9", "Relational engine micro-benchmarks")
	sizes := []int{200, 800, 3200}
	if quick {
		sizes = []int{100, 400}
	}
	reps := 5
	if quick {
		reps = 3
	}

	queries := []struct{ name, sql string }{
		{"full scan", `SELECT COUNT(*) FROM elem_contained`},
		{"filter", `SELECT COUNT(*) FROM elem_contained WHERE elem_name = 'element_000'`},
		{"hash join", `SELECT COUNT(*) FROM elem_contained e, landfill l WHERE e.landfill_name = l.name`},
		{"group by", `SELECT elem_name, COUNT(*), AVG(amount) FROM elem_contained GROUP BY elem_name`},
		{"order+limit", `SELECT elem_name, amount FROM elem_contained ORDER BY amount DESC LIMIT 10`},
	}

	tab := newTable(append([]string{"landfills", "rows"}, names(queries)...)...)
	for _, n := range sizes {
		db := engine.Open()
		cfg := dataset.DefaultConfig()
		cfg.Landfills = n
		cfg.Analyses = n
		if err := dataset.Populate(db, cfg); err != nil {
			return err
		}
		rows, err := countRows(db, "elem_contained")
		if err != nil {
			return err
		}
		cells := []any{n, rows}
		for _, q := range queries {
			med, err := medianOf(reps, func() error {
				_, err := db.Query(q.sql)
				return err
			})
			if err != nil {
				return fmt.Errorf("%s: %w", q.name, err)
			}
			cells = append(cells, med)
		}
		tab.add(cells...)
	}
	tab.write(w)
	return nil
}

func names(qs []struct{ name, sql string }) []string {
	out := make([]string, len(qs))
	for i, q := range qs {
		out[i] = q.name
	}
	return out
}
