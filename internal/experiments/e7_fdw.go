package experiments

import (
	"fmt"
	"io"
	"net"

	"crosse/internal/dataset"
	"crosse/internal/engine"
	"crosse/internal/fdw"
	"crosse/internal/sqldb"
	"crosse/internal/sqlval"
)

// RunE7 measures the federation substrate (the paper's postgres_fdw role):
// scanning a table locally, scanning it as a foreign table over the wire,
// and the effect of equality-predicate pushdown. Expected shape: remote
// full scans pay a serialisation cost linear in rows shipped; pushdown cuts
// both latency and rows transferred by the selectivity factor.
func RunE7(w io.Writer, quick bool) error {
	header(w, "E7", "FDW federation: local vs remote, pushdown")
	sizes := []int{1000, 5000, 20000}
	if quick {
		sizes = []int{500, 2000}
	}
	reps := 5
	if quick {
		reps = 3
	}

	tab := newTable("rows", "local scan", "remote scan", "remote w/ pushdown", "rows shipped (full/pushdown)")
	for _, n := range sizes {
		cfg := dataset.DefaultConfig()
		cfg.Landfills = n / 10
		cfg.PerLCount = 12
		remoteEng := engine.Open()
		if err := dataset.Populate(remoteEng, cfg); err != nil {
			return err
		}
		var remoteDB *sqldb.Database = remoteEng.Catalog()

		// Local reference scan.
		tbl, err := remoteDB.Table("elem_contained")
		if err != nil {
			return err
		}
		rows := tbl.Len()

		local, err := medianOf(reps, func() error {
			return tbl.Scan(func([]sqlval.Value) bool { return true })
		})
		if err != nil {
			return err
		}

		// Remote over an in-process pipe.
		srv := fdw.NewServer(remoteDB)
		a, b := net.Pipe()
		go srv.ServeConn(a)
		client := fdw.NewClient(b)
		ft, err := client.ForeignTable("elem_contained", "")
		if err != nil {
			return err
		}

		full, err := medianOf(reps, func() error {
			return ft.Scan(func([]sqlval.Value) bool { return true })
		})
		if err != nil {
			return err
		}
		_, shippedFull := client.Stats()

		probe := sqlval.NewString(dataset.LandfillName(0))
		before := shippedFull
		push, err := medianOf(reps, func() error {
			return ft.ScanEq("landfill_name", probe, func([]sqlval.Value) bool { return true })
		})
		if err != nil {
			return err
		}
		_, after := client.Stats()
		shippedPush := (after - before) / reps
		client.Close()

		tab.add(rows, local, full, push,
			fmt.Sprintf("%d / %d", rows, shippedPush))
	}
	tab.write(w)
	return nil
}
