package wal

// FaultFS wraps an FS and injects a failure at the Nth write or sync —
// either a clean error, a short write (a prefix of the bytes lands, then
// the error), or a crash, after which every operation fails until the
// test "reboots" on the underlying filesystem. Combined with
// MemFS.Crash/CrashKeeping (which discard un-synced bytes the way power
// loss does) it drives the crash-recovery property suite: crash a
// platform at an arbitrary write/sync boundary, recover from what is
// durable, and compare against the acknowledged-operation prefix.

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjected is the failure FaultFS injects at the chosen operation.
var ErrInjected = errors.New("wal: injected fault")

// ErrCrashed is returned by every operation after an injected crash.
var ErrCrashed = errors.New("wal: filesystem crashed")

// Fault kinds.
const (
	// FaultError fails the Nth operation and leaves the filesystem usable.
	FaultError = iota
	// FaultShortWrite persists a prefix of the Nth write, then fails it.
	// On a sync it behaves like FaultError.
	FaultShortWrite
	// FaultCrash fails the Nth operation and everything after it, as a
	// process that lost its disk. The test then calls MemFS.Crash (or
	// CrashKeeping) and reopens on the inner FS to simulate the reboot.
	FaultCrash
)

// FaultFS wraps an FS counting writes and syncs, injecting one configured
// fault. The zero value of the embedded configuration injects nothing.
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	ops     int // writes + syncs observed so far
	at      int // 1-based operation index to fault; 0 = disabled
	kind    int
	crashed bool
}

// NewFaultFS wraps inner with fault injection disabled.
func NewFaultFS(inner FS) *FaultFS { return &FaultFS{inner: inner} }

// FaultAt arms one fault of the given kind at the n-th write-or-sync from
// now (1-based, counted from the current operation count).
func (f *FaultFS) FaultAt(n, kind int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.at = f.ops + n
	f.kind = kind
}

// Ops returns the number of writes and syncs observed so far.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the injected crash has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// step counts one write/sync and decides its fate: inject reports whether
// this operation is the faulted one; keep is how many bytes of a write to
// let through (meaningful for short writes only).
func (f *FaultFS) step(isWrite bool, n int) (inject bool, keep int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return false, 0, ErrCrashed
	}
	f.ops++
	if f.at == 0 || f.ops != f.at {
		return false, n, nil
	}
	if f.kind == FaultCrash {
		f.crashed = true
	}
	if isWrite && f.kind == FaultShortWrite {
		return true, n / 2, nil
	}
	return true, 0, nil
}

// barrier gates the namespace operations: they pass through untouched
// unless a crash already fired.
func (f *FaultFS) barrier() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err := f.barrier(); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) Create(name string) (File, error) {
	if err := f.barrier(); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) OpenAppend(name string, size int64) (File, error) {
	if err := f.barrier(); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenAppend(name, size)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) Rename(oldname, newname string) error {
	if err := f.barrier(); err != nil {
		return err
	}
	return f.inner.Rename(oldname, newname)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.barrier(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) SyncDir(dir string) error {
	inject, _, err := f.step(false, 0)
	if err != nil {
		return err
	}
	if inject {
		return fmt.Errorf("sync %s: %w", dir, ErrInjected)
	}
	return f.inner.SyncDir(dir)
}

type faultFile struct {
	fs    *FaultFS
	inner File
}

func (h *faultFile) Write(p []byte) (int, error) {
	inject, keep, err := h.fs.step(true, len(p))
	if err != nil {
		return 0, err
	}
	if inject {
		n := 0
		if keep > 0 {
			n, _ = h.inner.Write(p[:keep])
		}
		return n, ErrInjected
	}
	return h.inner.Write(p)
}

func (h *faultFile) Sync() error {
	inject, _, err := h.fs.step(false, 0)
	if err != nil {
		return err
	}
	if inject {
		return ErrInjected
	}
	return h.inner.Sync()
}

func (h *faultFile) Close() error { return h.inner.Close() }
