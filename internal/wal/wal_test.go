package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openT(t *testing.T, path string, opts Options) *Log {
	t.Helper()
	l, err := Open(path, opts)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	return l
}

// collect re-opens a log capturing every replayed record.
func collect(t *testing.T, path string, opts Options) (map[uint64]string, *Log) {
	t.Helper()
	got := map[uint64]string{}
	opts.Replay = func(lsn uint64, payload []byte) error {
		got[lsn] = string(payload)
		return nil
	}
	return got, openT(t, path, opts)
}

func TestAppendReplayRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path, Options{Sync: SyncAlways})
	want := map[uint64]string{}
	for i := 0; i < 100; i++ {
		payload := fmt.Sprintf("record-%d", i)
		lsn, err := l.AppendSync([]byte(payload))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("append %d: got LSN %d", i, lsn)
		}
		want[lsn] = payload
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	got, l2 := collect(t, path, Options{})
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for lsn, p := range want {
		if got[lsn] != p {
			t.Fatalf("LSN %d: got %q want %q", lsn, got[lsn], p)
		}
	}
	if st := l2.StatusNow(); st.LSN != 100 || st.Start != 0 {
		t.Fatalf("status after reopen: %+v", st)
	}
}

// Replay must skip records already folded into the image (LSN ≤ FromLSN)
// while still CRC-validating them, and appending after recovery continues
// the sequence.
func TestReplayFromAnchor(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path, Options{Sync: SyncAlways})
	for i := 1; i <= 10; i++ {
		if _, err := l.AppendSync([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	got, l2 := collect(t, path, Options{FromLSN: 7})
	if len(got) != 3 {
		t.Fatalf("replayed %v, want LSNs 8..10 only", got)
	}
	for lsn := uint64(8); lsn <= 10; lsn++ {
		if got[lsn] != fmt.Sprintf("r%d", lsn) {
			t.Fatalf("LSN %d: got %q", lsn, got[lsn])
		}
	}
	if lsn, err := l2.AppendSync([]byte("r11")); err != nil || lsn != 11 {
		t.Fatalf("append after recovery: lsn=%d err=%v", lsn, err)
	}
	l2.Close()
}

// A log that starts past the image anchor has lost records: recovery must
// refuse rather than silently skip the gap.
func TestReplayGapFailsLoudly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path, Options{Start: 50})
	if _, err := l.AppendSync([]byte("x")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, err := Open(path, Options{FromLSN: 20, Replay: func(uint64, []byte) error { return nil }})
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("gap open: got %v, want ErrCorrupt", err)
	}
	// Without replay (no recovery semantics requested) the same log opens.
	l2 := openT(t, path, Options{})
	if st := l2.StatusNow(); st.Start != 50 || st.LSN != 51 {
		t.Fatalf("status: %+v", st)
	}
	l2.Close()
}

// Truncating a valid log at EVERY byte position must recover exactly the
// records whose frames are complete — the torn-tail rule, exhaustively.
func TestTruncationSeries(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l := openT(t, path, Options{Sync: SyncAlways})
	ends := []int{int(l.StatusNow().Size)} // ends[k] = file size after k records
	for i := 1; i <= 12; i++ {
		if _, err := l.AppendSync(fmt.Appendf(nil, "payload-%d-%s", i, "xxxxxxxxxx")); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, int(l.StatusNow().Size))
	}
	l.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != ends[len(ends)-1] {
		t.Fatalf("file is %d bytes, status said %d", len(full), ends[len(ends)-1])
	}

	header := ends[0]
	for cut := header; cut <= len(full); cut++ {
		trunc := filepath.Join(dir, "trunc.log")
		if err := os.WriteFile(trunc, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// The number of complete records at this cut.
		wantRecords := 0
		for k, end := range ends {
			if cut >= end {
				wantRecords = k
			}
		}
		got, l2 := collect(t, trunc, Options{})
		if len(got) != wantRecords {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, len(got), wantRecords)
		}
		if st := l2.StatusNow(); st.LSN != uint64(wantRecords) || st.Size != int64(ends[wantRecords]) {
			t.Fatalf("cut at %d: status %+v, want LSN %d size %d", cut, st, wantRecords, ends[wantRecords])
		}
		// The log must be appendable after tail repair.
		if _, err := l2.AppendSync([]byte("after")); err != nil {
			t.Fatalf("cut at %d: append after repair: %v", cut, err)
		}
		l2.Close()
	}

	// Truncating into the header is corruption, not a torn tail.
	for cut := 0; cut < header; cut++ {
		trunc := filepath.Join(dir, "hdr.log")
		if err := os.WriteFile(trunc, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(trunc, Options{}); err == nil {
			t.Fatalf("header cut at %d: opened successfully", cut)
		}
	}
}

// A bit flip in the FINAL record is indistinguishable from a torn tail
// (dropped); the same flip mid-log must fail loudly.
func TestCorruptionClassification(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l := openT(t, path, Options{Sync: SyncAlways})
	var lastStart int64
	for i := 1; i <= 8; i++ {
		lastStart = l.StatusNow().Size
		if _, err := l.AppendSync(fmt.Appendf(nil, "record-number-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	full, _ := os.ReadFile(path)

	flip := func(data []byte, at int) []byte {
		out := append([]byte(nil), data...)
		out[at] ^= 0x40
		return out
	}

	// Flip inside the last record's payload → torn tail, 7 records survive.
	tail := filepath.Join(dir, "tail.log")
	os.WriteFile(tail, flip(full, int(lastStart)+6), 0o644)
	got, l2 := collect(t, tail, Options{})
	if len(got) != 7 {
		t.Fatalf("tail flip: recovered %d records, want 7", len(got))
	}
	l2.Close()

	// Same flip when bytes follow → mid-log corruption, loud failure.
	mid := filepath.Join(dir, "mid.log")
	os.WriteFile(mid, flip(full, len(full)/2), 0o644)
	if _, err := Open(mid, Options{}); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log flip: got %v, want ErrCorrupt", err)
	}

	// A corrupt length prefix that *inflates* the length is loud even at
	// the tail (varint truncation can only shorten, never inflate — an
	// unterminated varint is a torn tail, a terminated huge one is rot).
	big := filepath.Join(dir, "big.log")
	huge := append([]byte(nil), full...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0x7f) // complete ~2^35 length
	os.WriteFile(big, huge, 0o644)
	if _, err := Open(big, Options{}); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized length: got %v, want ErrCorrupt", err)
	}
}

// slowFS delays every file Sync, giving concurrent committers a window to
// pile up behind the in-flight fsync the way they do on a real disk.
type slowFS struct {
	FS
	delay time.Duration
}

func (s slowFS) Create(name string) (File, error) {
	f, err := s.FS.Create(name)
	return slowFile{f, s.delay}, err
}

func (s slowFS) OpenAppend(name string, size int64) (File, error) {
	f, err := s.FS.OpenAppend(name, size)
	return slowFile{f, s.delay}, err
}

type slowFile struct {
	File
	delay time.Duration
}

func (f slowFile) Sync() error {
	time.Sleep(f.delay)
	return f.File.Sync()
}

// Group commit: concurrent committers must share fsyncs — with W writers
// each appending sequentially against a disk with realistic fsync
// latency, the fsync count stays well under the record count while every
// Commit still means "my record is fsynced".
func TestGroupCommitSharesFsyncs(t *testing.T) {
	mem := NewMemFS()
	l := openT(t, "wal.log", Options{FS: slowFS{mem, 200 * time.Microsecond}, Sync: SyncAlways})
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				lsn, err := l.Append(fmt.Appendf(nil, "w%d-%d", w, i))
				if err == nil {
					err = l.Commit(lsn)
				}
				if err != nil {
					errs <- err
					return
				}
				st := l.StatusNow()
				if st.Synced < lsn {
					errs <- fmt.Errorf("commit returned with synced=%d < lsn=%d", st.Synced, lsn)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := l.StatusNow()
	if st.LSN != writers*perWriter {
		t.Fatalf("appended %d, want %d", st.LSN, writers*perWriter)
	}
	if st.Syncs >= st.Appends {
		t.Fatalf("no batching: %d fsyncs for %d appends", st.Syncs, st.Appends)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything must replay.
	got, l2 := collect(t, "wal.log", Options{FS: mem})
	if len(got) != writers*perWriter {
		t.Fatalf("replayed %d, want %d", len(got), writers*perWriter)
	}
	l2.Close()
}

// SyncInterval: the ticker must make acknowledged records durable without
// any explicit Sync call.
func TestIntervalSync(t *testing.T) {
	mem := NewMemFS()
	l := openT(t, "wal.log", Options{FS: mem, Sync: SyncInterval, SyncEvery: time.Millisecond})
	for i := 0; i < 20; i++ {
		if _, err := l.AppendSync([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.StatusNow().Synced < 20 {
		if time.Now().After(deadline) {
			t.Fatalf("ticker never synced: %+v", l.StatusNow())
		}
		time.Sleep(time.Millisecond)
	}
	l.Close()
}

// Rotation anchors a fresh log at the given LSN, and recovery of the
// rotated log resumes the sequence.
func TestRotate(t *testing.T) {
	mem := NewMemFS()
	l := openT(t, "wal.log", Options{FS: mem, Sync: SyncAlways})
	for i := 1; i <= 5; i++ {
		if _, err := l.AppendSync([]byte(fmt.Sprintf("old%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rotate(5); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	if st := l.StatusNow(); st.Start != 5 || st.LSN != 5 {
		t.Fatalf("post-rotate status: %+v", st)
	}
	if lsn, err := l.AppendSync([]byte("new6")); err != nil || lsn != 6 {
		t.Fatalf("append after rotate: lsn=%d err=%v", lsn, err)
	}
	l.Close()

	got, l2 := collect(t, "wal.log", Options{FS: mem, FromLSN: 5})
	defer l2.Close()
	if len(got) != 1 || got[6] != "new6" {
		t.Fatalf("replay after rotate: %v", got)
	}

	// Rotating beyond the appended frontier is a caller bug.
	if err := l2.Rotate(99); err == nil {
		t.Fatal("rotate past frontier succeeded")
	}
}

// A failed header write during rotation must fail the rotation — not
// silently rename a headerless log into place (regression: the write
// error was shadowed, so the rename and directory sync ran anyway and
// the next recovery died on "bad magic").
func TestRotateHeaderWriteFailure(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem)
	l := openT(t, "wal.log", Options{FS: ffs, Sync: SyncAlways})
	if _, err := l.AppendSync([]byte("acked")); err != nil {
		t.Fatal(err)
	}
	// With everything settled, the next write is the new log's header.
	ffs.FaultAt(1, FaultError)
	if err := l.Rotate(1); err == nil {
		t.Fatal("rotate with failed header write succeeded")
	}
	if l.Err() == nil {
		t.Fatal("log not wedged after failed rotation")
	}
	_ = l.Close()

	// The old log was never superseded: the acknowledged record recovers.
	mem.Crash()
	got, l2 := collect(t, "wal.log", Options{FS: mem})
	defer l2.Close()
	if len(got) != 1 || got[1] != "acked" {
		t.Fatalf("recovered %v, want the pre-rotation record", got)
	}
}

// Any write/sync failure wedges the log permanently: later appends,
// commits and rotates all fail, and Close does not fsync the suspect
// buffer.
func TestStickyWedge(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem)
	l := openT(t, "wal.log", Options{FS: ffs, Sync: SyncAlways})
	if _, err := l.AppendSync([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	ffs.FaultAt(1, FaultError) // next write or sync fails
	if _, err := l.AppendSync([]byte("boom")); err == nil {
		t.Fatal("faulted append succeeded")
	}
	if _, err := l.Append([]byte("after")); err == nil {
		t.Fatal("append after wedge succeeded")
	}
	if err := l.Rotate(1); err == nil {
		t.Fatal("rotate after wedge succeeded")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("sync after wedge succeeded")
	}
	if l.Err() == nil {
		t.Fatal("Err() nil after wedge")
	}
	_ = l.Close()

	// Only the pre-fault record is durable.
	mem.Crash()
	got, l2 := collect(t, "wal.log", Options{FS: mem})
	defer l2.Close()
	if len(got) != 1 || got[1] != "ok" {
		t.Fatalf("recovered %v, want only LSN 1", got)
	}
}

// Power loss (strict: every un-synced byte gone) after SyncAlways commits
// must preserve every acknowledged record.
func TestPowerLossKeepsAcknowledged(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		mem := NewMemFS()
		l := openT(t, "wal.log", Options{FS: mem, Sync: SyncAlways})
		n := 1 + rng.Intn(30)
		for i := 1; i <= n; i++ {
			if _, err := l.AppendSync(fmt.Appendf(nil, "t%d-%d", trial, i)); err != nil {
				t.Fatal(err)
			}
		}
		// A possibly-unacknowledged straggler sits in the buffer or page
		// cache when the power goes.
		if rng.Intn(2) == 0 {
			if _, err := l.Append([]byte("straggler")); err != nil {
				t.Fatal(err)
			}
		}
		mem.Crash() // no Close: the process just died
		got, l2 := collect(t, "wal.log", Options{FS: mem})
		if len(got) != n {
			t.Fatalf("trial %d: recovered %d records, want %d", trial, len(got), n)
		}
		l2.Close()
	}
}

// CrashKeeping retains a random prefix of un-synced bytes — torn tails in
// the wild. Recovery must land on a record boundary between the
// acknowledged frontier and the append frontier.
func TestTornTailRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		mem := NewMemFS()
		l := openT(t, "wal.log", Options{FS: mem, Sync: SyncNever})
		synced := 0
		n := 3 + rng.Intn(20)
		for i := 1; i <= n; i++ {
			if _, err := l.Append(fmt.Appendf(nil, "payload-%d", i)); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(4) == 0 {
				if err := l.Sync(); err != nil {
					t.Fatal(err)
				}
				synced = i
			}
		}
		// Push buffered bytes to the "page cache" so CrashKeeping has
		// un-synced bytes to tear.
		if err := l.Commit(uint64(n)); err != nil {
			t.Fatal(err)
		}
		mem.CrashKeeping(rng)
		got, l2 := collect(t, "wal.log", Options{FS: mem})
		if len(got) < synced || len(got) > n {
			t.Fatalf("trial %d: recovered %d records, want between %d and %d", trial, len(got), synced, n)
		}
		for lsn := 1; lsn <= len(got); lsn++ {
			if got[uint64(lsn)] != fmt.Sprintf("payload-%d", lsn) {
				t.Fatalf("trial %d: LSN %d corrupted: %q", trial, lsn, got[uint64(lsn)])
			}
		}
		l2.Close()
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		got, err := ParseSyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("roundtrip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy parsed")
	}
}
