package wal

import (
	"errors"
	"io/fs"
	"math/rand"
	"testing"
)

// MemFS must model fsync semantics: un-synced bytes vanish on Crash,
// synced ones survive, and namespace operations (create/rename) are
// volatile until SyncDir.
func TestMemFSDurability(t *testing.T) {
	mem := NewMemFS()
	f, err := mem.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("durable"))
	f.Sync()
	f.Write([]byte("-volatile"))
	mem.SyncDir(".") // the file's creation is durable, its tail is not
	mem.Crash()

	got, err := mem.ReadFile("a")
	if err != nil {
		t.Fatalf("file lost: %v", err)
	}
	if string(got) != "durable" {
		t.Fatalf("got %q, want synced prefix only", got)
	}

	// A file created after the last SyncDir does not survive the crash.
	g, _ := mem.Create("b")
	g.Write([]byte("x"))
	g.Sync() // content synced, but the namespace entry is not
	mem.Crash()
	if _, err := mem.ReadFile("b"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("unsynced-dir file survived: %v", err)
	}

	// Rename is volatile the same way.
	h, _ := mem.Create("c")
	h.Write([]byte("y"))
	h.Sync()
	mem.SyncDir(".")
	if err := mem.Rename("c", "d"); err != nil {
		t.Fatal(err)
	}
	mem.Crash()
	if _, err := mem.ReadFile("c"); err != nil {
		t.Fatalf("pre-rename name lost: %v", err)
	}
	if _, err := mem.ReadFile("d"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("unsynced rename survived")
	}
}

// CrashKeeping keeps the synced prefix plus a random slice of the
// un-synced bytes — never less than synced, never more than written.
func TestMemFSCrashKeeping(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		mem := NewMemFS()
		f, _ := mem.Create("a")
		f.Write([]byte("0123"))
		f.Sync()
		f.Write([]byte("456789"))
		mem.SyncDir(".")
		mem.CrashKeeping(rng)
		got, err := mem.ReadFile("a")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) < 4 || len(got) > 10 || string(got) != "0123456789"[:len(got)] {
			t.Fatalf("trial %d: kept %q", trial, got)
		}
	}
}

// FaultFS must hit exactly the armed operation with the armed kind.
func TestFaultKinds(t *testing.T) {
	// Clean error on the 2nd write: first lands, second fails whole.
	mem := NewMemFS()
	ffs := NewFaultFS(mem)
	f, _ := ffs.Create("a")
	ffs.FaultAt(2, FaultError)
	if _, err := f.Write([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("two")); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v", err)
	}
	if _, err := f.Write([]byte("three")); err != nil { // only ONE fault armed
		t.Fatal(err)
	}
	got, _ := mem.ReadFile("a")
	if string(got) != "onethree" {
		t.Fatalf("content %q", got)
	}

	// Short write: half the bytes land, then the error.
	mem2 := NewMemFS()
	ffs2 := NewFaultFS(mem2)
	g, _ := ffs2.Create("b")
	ffs2.FaultAt(1, FaultShortWrite)
	if n, err := g.Write([]byte("abcdef")); !errors.Is(err, ErrInjected) || n != 3 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	got2, _ := mem2.ReadFile("b")
	if string(got2) != "abc" {
		t.Fatalf("content %q", got2)
	}

	// Crash: the armed op and everything after fails, Crashed reports it.
	mem3 := NewMemFS()
	ffs3 := NewFaultFS(mem3)
	h, _ := ffs3.Create("c")
	ffs3.FaultAt(1, FaultCrash)
	if err := h.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v", err)
	}
	if !ffs3.Crashed() {
		t.Fatal("not crashed")
	}
	if _, err := h.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v", err)
	}
	if _, err := ffs3.Create("d"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create: %v", err)
	}
	if err := ffs3.SyncDir("."); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash syncdir: %v", err)
	}
}

// Ops must count writes, file syncs and directory syncs — the boundaries
// the property suite arms faults at.
func TestFaultOpCounting(t *testing.T) {
	ffs := NewFaultFS(NewMemFS())
	f, _ := ffs.Create("a")
	f.Write([]byte("x"))
	f.Sync()
	ffs.SyncDir(".")
	if got := ffs.Ops(); got != 3 {
		t.Fatalf("ops = %d, want 3", got)
	}
}
