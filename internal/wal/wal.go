// Package wal implements the platform's append-only write-ahead log: a
// CRC-32-framed, length-prefixed record stream with group commit and
// snapshot-anchored recovery. The log bounds data loss between platform
// images: every platform mutation appends exactly one record before it is
// acknowledged, and recovery is "load the last image, then replay every
// record past the image's log sequence number".
//
// Wire format (integers are unsigned varints, the convention of the
// platform's snapshot codec in internal/rdf):
//
//	header: "CROSSEWAL" | version byte | startLSN
//	record: payloadLen | CRC-32 (IEEE, little-endian) of payload | payload
//
// Records carry no explicit LSN: record i of a log whose header says
// startLSN s has LSN s+i+1, so the sequence is gap-free by construction
// and compaction re-anchors it by rewriting the header. startLSN is the
// LSN of the last record already folded into the platform image the log
// was rotated against; a fresh deployment starts at 0.
//
// Torn-tail rule: a final record that is truncated (the file ends inside
// its length prefix, checksum, or payload) or whose checksum fails is the
// residue of a crash mid-append — it was never acknowledged, so recovery
// drops it and truncates the file. Everything before it must replay
// cleanly, and a record that fails its checksum with more bytes after it
// is mid-log corruption: recovery fails loudly rather than guess.
//
// Group commit: Append serialises a record into the log's buffer and
// returns its LSN without waiting; Commit blocks until the record is
// durable under the sync policy. Under SyncAlways one fsync acknowledges
// every record appended while the previous fsync was in flight, so
// concurrent writers share syncs instead of queueing one fsync each.
// SyncInterval acknowledges once the record reaches the OS (surviving a
// process crash, not power loss) and fsyncs on a timer; SyncNever only
// syncs on rotation and close.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"sync"
	"time"
)

// SyncPolicy selects when Commit makes records durable.
type SyncPolicy int

const (
	// SyncAlways fsyncs before acknowledging (group-committed).
	SyncAlways SyncPolicy = iota
	// SyncInterval acknowledges after the record reaches the OS and
	// fsyncs every Options.SyncEvery; power loss can cost up to one
	// interval of acknowledged records, a process crash costs nothing.
	SyncInterval
	// SyncNever fsyncs only on rotation and close.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParseSyncPolicy converts a flag value to a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or never)", s)
}

const (
	logMagic   = "CROSSEWAL"
	logVersion = 1

	// maxRecord bounds one record so a corrupt length prefix cannot drive
	// a runaway allocation. A complete length prefix above the bound is
	// bit corruption, not a torn write (truncating a varint clears its
	// continuation chain instead of inflating the value), so it fails
	// loudly even at the tail.
	maxRecord = 1 << 30

	defaultSyncEvery = 100 * time.Millisecond
)

// ErrCorrupt tags recovery failures caused by mid-log corruption (as
// opposed to I/O errors and torn tails, which are repaired silently).
var ErrCorrupt = errors.New("wal: corrupt log")

// Options configure Open.
type Options struct {
	// FS is the filesystem; nil means the real one.
	FS FS
	// Sync is the durability policy for Commit.
	Sync SyncPolicy
	// SyncEvery is the SyncInterval period (default 100ms).
	SyncEvery time.Duration
	// Start anchors a log created by Open (the LSN of the platform image
	// the caller just wrote, 0 for a fresh deployment). Ignored when the
	// log already exists.
	Start uint64
	// Replay, when set, receives every durable record in order during
	// Open. Records with LSN ≤ FromLSN are validated but not delivered
	// (they are already folded into the image). A Replay error aborts
	// Open: the state the log describes cannot be rebuilt.
	Replay func(lsn uint64, payload []byte) error
	// FromLSN is the image anchor replay resumes after. Open fails if
	// Replay is set and the log starts past FromLSN (a gap: records
	// between the image and the log's first record are gone).
	FromLSN uint64
	// Logf, when set, receives operational notices (torn-tail repair).
	Logf func(format string, args ...any)
}

// Log is an append-only record log. Safe for concurrent use.
type Log struct {
	fs   FS
	path string

	mu       sync.Mutex
	cond     *sync.Cond
	f        File
	w        *bufio.Writer
	start    uint64 // header anchor
	appended uint64 // LSN of the last record written into the buffer
	synced   uint64 // LSN covered by the last successful fsync
	size     int64  // bytes appended (header + records)
	syncing  bool   // an fsync is in flight (group-commit gate)
	err      error  // sticky failure: the log wedges on any write error

	appends uint64 // records appended (status)
	syncs   uint64 // fsyncs issued (status)

	policy SyncPolicy
	every  time.Duration
	ticker *time.Ticker
	done   chan struct{}
}

// Status is a point-in-time snapshot of the log's position.
type Status struct {
	Start   uint64 `json:"start_lsn"`  // image anchor (compacted prefix)
	LSN     uint64 `json:"lsn"`        // last appended record
	Synced  uint64 `json:"synced_lsn"` // last fsync-covered record
	Size    int64  `json:"size_bytes"`
	Appends uint64 `json:"appends"`
	Syncs   uint64 `json:"syncs"`
	Policy  string `json:"sync_policy"`
}

// Open opens the log at path, creating it (anchored at opts.Start) when it
// does not exist. An existing log is scanned end to end: every record is
// CRC-verified, opts.Replay receives the ones past opts.FromLSN, a torn
// tail is truncated, and the log is left positioned for appending.
func Open(path string, opts Options) (*Log, error) {
	l := &Log{
		fs:     opts.FS,
		path:   path,
		policy: opts.Sync,
		every:  opts.SyncEvery,
	}
	if l.fs == nil {
		l.fs = OS
	}
	if l.every <= 0 {
		l.every = defaultSyncEvery
	}
	l.cond = sync.NewCond(&l.mu)

	data, err := l.fs.ReadFile(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		if err := l.create(path, opts.Start); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	default:
		res, err := scan(data, opts.FromLSN, opts.Replay)
		if err != nil {
			return nil, fmt.Errorf("wal: %s: %w", path, err)
		}
		if opts.Replay != nil && res.start > opts.FromLSN {
			return nil, fmt.Errorf("%w: %s starts at LSN %d, past the image anchor %d (records %d..%d are missing)",
				ErrCorrupt, path, res.start, opts.FromLSN, opts.FromLSN+1, res.start)
		}
		if res.torn > 0 && opts.Logf != nil {
			opts.Logf("wal: dropped torn tail of %s: %d byte(s) after LSN %d (crash residue, never acknowledged)",
				path, res.torn, res.last)
		}
		f, err := l.fs.OpenAppend(path, int64(res.good))
		if err != nil {
			return nil, fmt.Errorf("wal: reopen %s: %w", path, err)
		}
		l.f = f
		l.w = bufio.NewWriter(f)
		l.start = res.start
		l.appended = res.last
		l.synced = res.last
		l.size = int64(res.good)
	}

	if l.policy == SyncInterval {
		l.ticker = time.NewTicker(l.every)
		l.done = make(chan struct{})
		go l.syncLoop(l.ticker, l.done)
	}
	return l, nil
}

// create writes a fresh log file anchored at start and makes its creation
// durable (file sync + directory sync) before any record lands in it.
func (l *Log) create(path string, start uint64) error {
	f, err := l.fs.Create(path)
	if err != nil {
		return fmt.Errorf("wal: create %s: %w", path, err)
	}
	var hdr []byte
	hdr = append(hdr, logMagic...)
	hdr = append(hdr, logVersion)
	hdr = binary.AppendUvarint(hdr, start)
	if _, err = f.Write(hdr); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: initialise %s: %w", path, err)
	}
	if err := l.fs.SyncDir(dirOf(path)); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync dir of %s: %w", path, err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.start = start
	l.appended = start
	l.synced = start
	l.size = int64(len(hdr))
	return nil
}

// scanResult is what a recovery scan learns about an existing log.
type scanResult struct {
	start uint64 // header anchor
	last  uint64 // LSN of the last intact record
	good  int    // bytes up to and including the last intact record
	torn  int    // trailing bytes dropped under the torn-tail rule
}

// scan walks a log image, CRC-verifying every record, delivering the ones
// past fromLSN to replay, and classifying any trailing damage: a final
// record cut off by the end of the file (or failing its checksum right at
// the end) is a torn tail and is dropped; damage with intact data after
// it fails loudly with ErrCorrupt.
func scan(data []byte, fromLSN uint64, replay func(uint64, []byte) error) (scanResult, error) {
	hdrLen := len(logMagic) + 1
	if len(data) < hdrLen || string(data[:len(logMagic)]) != logMagic {
		return scanResult{}, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := data[len(logMagic)]; v != logVersion {
		return scanResult{}, fmt.Errorf("%w: unsupported version %d (have %d)", ErrCorrupt, v, logVersion)
	}
	start, n := binary.Uvarint(data[hdrLen:])
	if n <= 0 {
		return scanResult{}, fmt.Errorf("%w: unreadable start LSN", ErrCorrupt)
	}
	res := scanResult{start: start, last: start, good: hdrLen + n}

	off := res.good
	for off < len(data) {
		length, n := binary.Uvarint(data[off:])
		if n == 0 { // length prefix runs off the end of the file
			break
		}
		if n < 0 || length > maxRecord {
			return res, fmt.Errorf("%w: record after LSN %d declares %d bytes", ErrCorrupt, res.last, length)
		}
		end := off + n + 4 + int(length)
		if end > len(data) { // payload or checksum cut off
			break
		}
		sum := binary.LittleEndian.Uint32(data[off+n:])
		payload := data[off+n+4 : end]
		if crc32.ChecksumIEEE(payload) != sum {
			if end == len(data) { // checksum failure on the final record
				break
			}
			return res, fmt.Errorf("%w: checksum mismatch at LSN %d with %d intact byte(s) after it",
				ErrCorrupt, res.last+1, len(data)-end)
		}
		lsn := res.last + 1
		if replay != nil && lsn > fromLSN {
			if err := replay(lsn, payload); err != nil {
				return res, fmt.Errorf("replay LSN %d: %w", lsn, err)
			}
		}
		res.last = lsn
		res.good = end
		off = end
	}
	res.torn = len(data) - res.good
	return res, nil
}

// fail wedges the log: after any write, flush or sync error the in-memory
// platform may be ahead of the durable log, so every later operation
// (including compaction) refuses until the operator restarts from
// image + log. Callers must hold l.mu.
func (l *Log) fail(err error) error {
	if l.err == nil {
		l.err = fmt.Errorf("wal: log wedged: %w", err)
	}
	l.cond.Broadcast()
	return l.err
}

// Err returns the sticky failure that wedged the log, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Append serialises one record into the log's buffer and returns its LSN.
// The record is NOT durable yet: call Commit (or AppendSync) before
// acknowledging the mutation it describes. Appends from concurrent
// writers are ordered by the log's lock; callers that need record order
// to match state-application order must apply and append under one lock.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	var hdr [binary.MaxVarintLen64 + 4]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[n:], crc32.ChecksumIEEE(payload))
	if _, err := l.w.Write(hdr[:n+4]); err != nil {
		return 0, l.fail(err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return 0, l.fail(err)
	}
	l.appended++
	l.appends++
	l.size += int64(n + 4 + len(payload))
	return l.appended, nil
}

// Commit blocks until the record at lsn is durable under the sync policy:
// fsynced for SyncAlways (sharing one fsync with every record appended in
// the meantime), handed to the OS for SyncInterval and SyncNever.
func (l *Log) Commit(lsn uint64) error {
	if l.policy == SyncAlways {
		return l.syncTo(lsn)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if err := l.w.Flush(); err != nil {
		return l.fail(err)
	}
	return nil
}

// AppendSync appends a record and waits for it to be durable.
func (l *Log) AppendSync(payload []byte) (uint64, error) {
	lsn, err := l.Append(payload)
	if err != nil {
		return 0, err
	}
	return lsn, l.Commit(lsn)
}

// Sync forces an fsync covering everything appended so far, regardless of
// policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	target := l.appended
	l.mu.Unlock()
	return l.syncTo(target)
}

// syncTo is the group-commit core: it blocks until the fsync frontier
// covers lsn. At most one fsync is in flight; the first waiter past it
// flushes the buffer and syncs on behalf of every record appended while
// the previous fsync ran, and the rest just wait on the frontier.
func (l *Log) syncTo(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.err != nil {
			return l.err
		}
		if l.synced >= lsn {
			return nil
		}
		if l.syncing {
			l.cond.Wait()
			continue
		}
		l.syncing = true
		if err := l.w.Flush(); err != nil {
			l.syncing = false
			return l.fail(err)
		}
		covered := l.appended
		l.mu.Unlock()
		err := l.f.Sync()
		l.mu.Lock()
		l.syncing = false
		if err != nil {
			return l.fail(err)
		}
		l.syncs++
		if covered > l.synced {
			l.synced = covered
		}
		l.cond.Broadcast()
	}
}

// syncLoop is the SyncInterval timer: it fsyncs on a cadence so power
// loss costs at most one interval of acknowledged records.
// The ticker and done channel are passed in rather than read from l:
// Close stops the ticker and nils the field, and may run before this
// goroutine is even scheduled.
func (l *Log) syncLoop(ticker *time.Ticker, done chan struct{}) {
	for {
		select {
		case <-done:
			return
		case <-ticker.C:
			l.mu.Lock()
			behind := l.appended > l.synced && l.err == nil
			target := l.appended
			l.mu.Unlock()
			if behind {
				_ = l.syncTo(target) // an error wedges the log; appends report it
			}
		}
	}
}

// LSN returns the LSN of the last appended record.
func (l *Log) LSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// StatusNow reports the log's current position and counters.
func (l *Log) StatusNow() Status {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Status{
		Start:   l.start,
		LSN:     l.appended,
		Synced:  l.synced,
		Size:    l.size,
		Appends: l.appends,
		Syncs:   l.syncs,
		Policy:  l.policy.String(),
	}
}

// Rotate atomically replaces the log with an empty one anchored at start
// (the LSN of the platform image the caller just wrote — compaction).
// Everything pending is flushed and fsynced first so in-flight Commits
// resolve, then the fresh log is created beside the old one, synced, and
// renamed over it; the directory sync makes the swap durable. A crash at
// any point leaves either the old log (whose prefix the new image simply
// shadows) or the new one.
func (l *Log) Rotate(start uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if start > l.appended {
		return fmt.Errorf("wal: rotate to LSN %d beyond appended %d", start, l.appended)
	}
	// Settle the old log so every record it acknowledged is on disk until
	// the very moment the rename supersedes it.
	if err := l.w.Flush(); err != nil {
		return l.fail(err)
	}
	if l.synced < l.appended {
		if err := l.f.Sync(); err != nil {
			return l.fail(err)
		}
		l.syncs++
		l.synced = l.appended
		l.cond.Broadcast()
	}

	tmp := l.path + ".rotate"
	nf, err := l.fs.Create(tmp)
	if err != nil {
		return l.fail(err)
	}
	var hdr []byte
	hdr = append(hdr, logMagic...)
	hdr = append(hdr, logVersion)
	hdr = binary.AppendUvarint(hdr, start)
	if _, err = nf.Write(hdr); err == nil {
		err = nf.Sync()
	}
	if err == nil {
		err = l.fs.Rename(tmp, l.path)
	}
	if err == nil {
		err = l.fs.SyncDir(dirOf(l.path))
	}
	if err != nil {
		nf.Close()
		l.fs.Remove(tmp)
		return l.fail(err)
	}
	l.f.Close()
	l.f = nf
	l.w = bufio.NewWriter(nf)
	l.start = start
	l.appended = start
	l.synced = start
	l.size = int64(len(hdr))
	return nil
}

// Close flushes, fsyncs and closes the log. A wedged log closes its file
// without syncing (the whole point of the wedge is that its buffered
// state is not trustworthy).
func (l *Log) Close() error {
	if l.ticker != nil {
		l.ticker.Stop()
		close(l.done)
		l.ticker = nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return l.err
	}
	err := l.err
	if err == nil {
		if err = l.w.Flush(); err == nil {
			err = l.f.Sync()
		}
		if err != nil {
			l.fail(err)
		} else {
			l.synced = l.appended
		}
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
