package wal

// This file defines the filesystem seam the WAL (and the platform image
// writer in internal/core) runs on. Production uses OS, which backs the
// interface with real files and directory fsyncs. Tests use MemFS, an
// in-memory filesystem that models the durability semantics the log's
// crash guarantees depend on: bytes written to a file are volatile until
// the file is fsynced, and directory operations (create/rename/remove)
// are volatile until the directory is fsynced. Crash/CrashKeeping simulate
// power loss by discarding (all or part of) the volatile state, which is
// exactly the event the torn-tail recovery rule exists for. FaultFS (see
// fault.go) wraps any FS to inject failures at the Nth write or sync.

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
)

// File is an open, append-position file handle.
type File interface {
	io.Writer
	// Sync durably persists everything written so far.
	Sync() error
	Close() error
}

// FS is the filesystem surface the WAL and the image writer need:
// whole-file reads for recovery scans, create/append handles for writing,
// and explicit directory syncs so renames and creations can be made
// durable (an atomic rename alone does not survive power loss).
type FS interface {
	// ReadFile returns the full content of name; a missing file reports
	// an error satisfying os.IsNotExist / errors.Is(err, fs.ErrNotExist).
	ReadFile(name string) ([]byte, error)
	// Create creates name, truncating any existing content.
	Create(name string) (File, error)
	// OpenAppend opens an existing file for appending, first truncating
	// it to size bytes (how recovery drops a torn tail).
	OpenAppend(name string, size int64) (File, error)
	Rename(oldname, newname string) error
	Remove(name string) error
	// SyncDir durably persists directory operations under dir.
	SyncDir(dir string) error
}

// --- real filesystem ---

type osFS struct{}

// OS is the real filesystem.
var OS FS = osFS{}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) OpenAppend(name string, size int64) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// --- in-memory filesystem with durability modeling ---

// memFile is one file's content. buf is the live content (what reads and
// the OS page cache would see); synced is how much of it has been made
// durable by Sync.
type memFile struct {
	buf    []byte
	synced int
}

// MemFS is an in-memory FS modeling fsync semantics for crash tests:
// written bytes and directory operations are volatile until the file
// (resp. directory) is synced, and Crash discards volatile state the way
// power loss would. All names share one flat namespace; SyncDir persists
// every pending directory operation regardless of its dir argument.
type MemFS struct {
	mu      sync.Mutex
	live    map[string]*memFile // current namespace
	durable map[string]*memFile // namespace as of the last SyncDir
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{live: map[string]*memFile{}, durable: map[string]*memFile{}}
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.live[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	out := make([]byte, len(f.buf))
	copy(out, f.buf)
	return out, nil
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{}
	m.live[name] = f
	return &memHandle{fs: m, f: f}, nil
}

func (m *MemFS) OpenAppend(name string, size int64) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.live[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	if size < 0 || size > int64(len(f.buf)) {
		return nil, fmt.Errorf("wal: truncate %s to %d bytes (have %d)", name, size, len(f.buf))
	}
	f.buf = f.buf[:size]
	if f.synced > int(size) {
		f.synced = int(size)
	}
	return &memHandle{fs: m, f: f}, nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.live[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	delete(m.live, oldname)
	m.live[newname] = f
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.live[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.live, name)
	return nil
}

func (m *MemFS) SyncDir(string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.durable = make(map[string]*memFile, len(m.live))
	for name, f := range m.live {
		m.durable[name] = f
	}
	return nil
}

// Crash simulates power loss: the namespace reverts to the last SyncDir
// and every surviving file's content reverts to its synced prefix —
// un-synced bytes are discarded. The filesystem stays usable afterwards,
// playing the role of the disk after reboot.
func (m *MemFS) Crash() {
	m.crash(func(f *memFile) int { return f.synced })
}

// CrashKeeping simulates the messier power loss where the kernel had
// written back an arbitrary prefix of the un-synced page cache before the
// cut: each surviving file keeps its synced prefix plus a random amount
// of the bytes written after it — including, possibly, half a record.
// This is what produces torn WAL tails.
func (m *MemFS) CrashKeeping(rng *rand.Rand) {
	m.crash(func(f *memFile) int {
		return f.synced + rng.Intn(len(f.buf)-f.synced+1)
	})
}

func (m *MemFS) crash(keep func(*memFile) int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.live = make(map[string]*memFile, len(m.durable))
	for name, f := range m.durable {
		n := keep(f)
		kept := &memFile{buf: append([]byte(nil), f.buf[:n]...)}
		kept.synced = len(kept.buf)
		m.live[name] = kept
		m.durable[name] = kept
	}
}

type memHandle struct {
	fs *MemFS
	f  *memFile
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.f.buf = append(h.f.buf, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.f.synced = len(h.f.buf)
	return nil
}

func (h *memHandle) Close() error { return nil }

// dirOf returns the directory component for SyncDir calls.
func dirOf(path string) string { return filepath.Dir(path) }
