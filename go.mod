module crosse

go 1.24
