// Serving-tier load benchmark: simulated users driving traffic over the
// real HTTP handler (routing, middleware, JSON rendering included), so the
// measured QPS is what a deployment would see. Three workloads:
//
//   - CachedRepeat: a small hot query set with the enriched-result cache
//     on — the repeated-query ceiling.
//   - Uncached: the same traffic with the cache disabled — every request
//     pays the full enrichment pipeline.
//   - Mixed: cache on, with one mutation per 16 requests — each mutation
//     bumps the issuing user's view epoch, so the cache keeps being
//     invalidated and repopulated the way live traffic would.
package crosse

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"crosse/internal/rest"
	"crosse/internal/serve"
)

const serveLoadUsers = 8

// serveLoadQuery is the hot query: the stored dangerQuery runs a SPARQL
// evaluation against the user's view on every miss, while the result stays
// small — the shape where result caching pays the most.
const serveLoadQuery = `SELECT landfill_name FROM elem_contained
WHERE ${elem_name = HazardousWaste:c1}
ENRICH REPLACECONSTANT(c1, HazardousWaste, dangerQuery)`

func serveLoadFixture(b *testing.B, withCache bool) (*httptest.Server, *http.Client) {
	b.Helper()
	enr := benchFixture(b, 100, 0)
	srv := rest.NewServer(enr)
	srv.SetLogf(nil)
	if withCache {
		srv.SetResultCache(serve.NewCache(4096, 64<<20))
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}
	for i := 0; i < serveLoadUsers; i++ {
		servePost(b, client, ts, "/api/v1/users", fmt.Sprintf(`{"name":"u%d"}`, i))
		servePost(b, client, ts, "/api/v1/statements", fmt.Sprintf(
			`{"user":"u%d","subject":"element_%03d","property":"dangerLevel","object":"high","object_literal":true}`, i, i))
	}
	return ts, client
}

func servePost(b *testing.B, client *http.Client, ts *httptest.Server, path, body string) {
	b.Helper()
	resp, err := client.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		b.Fatalf("POST %s: %d", path, resp.StatusCode)
	}
}

// serveLoadRun drives b.N requests through op (called with a per-request
// sequence number) from parallel workers and reports throughput.
func serveLoadRun(b *testing.B, op func(n uint64)) {
	var seq atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			op(seq.Add(1))
		}
	})
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "qps")
	}
}

func BenchmarkServeLoad(b *testing.B) {
	query := func(client *http.Client, ts *httptest.Server, n uint64) {
		body := fmt.Sprintf(`{"user":"u%d","sesql":%q}`, n%serveLoadUsers, serveLoadQuery)
		resp, err := client.Post(ts.URL+"/api/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			b.Error(err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Errorf("query: %d", resp.StatusCode)
		}
	}

	b.Run("CachedRepeat", func(b *testing.B) {
		ts, client := serveLoadFixture(b, true)
		serveLoadRun(b, func(n uint64) { query(client, ts, n) })
	})

	b.Run("Uncached", func(b *testing.B) {
		ts, client := serveLoadFixture(b, false)
		serveLoadRun(b, func(n uint64) { query(client, ts, n) })
	})

	b.Run("Mixed", func(b *testing.B) {
		ts, client := serveLoadFixture(b, true)
		serveLoadRun(b, func(n uint64) {
			if n%16 == 0 {
				servePost(b, client, ts, "/api/v1/statements", fmt.Sprintf(
					`{"user":"u%d","subject":"element_%03d","property":"dangerLevel","object":"v%d","object_literal":true}`,
					n%serveLoadUsers, n%serveLoadUsers, n))
				return
			}
			query(client, ts, n)
		})
	})
}
