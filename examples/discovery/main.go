// Discovery demonstrates the paper's peer-networking and preview services
// (Sec. I-B.b and I-B.c): a community of researchers annotates the
// databank; the platform discovers peers with similar contexts, recommends
// knowledge "explored and used by others within similar contexts", ranks
// query results by personal relevance, and extracts concept snippets.
package main

import (
	"fmt"
	"log"

	"crosse/internal/core"
	"crosse/internal/engine"
	"crosse/internal/kb"
	"crosse/internal/preview"
	"crosse/internal/rdf"
	"crosse/internal/recommend"
)

func smg(l string) rdf.Term { return rdf.NewIRI(core.DefaultIRIPrefix + l) }

func main() {
	db := engine.Open()
	if _, err := db.ExecScript(`
		CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT);
		INSERT INTO elem_contained VALUES
			('Mercury', 'a'), ('Lead', 'a'), ('Asbestos', 'a'),
			('Zinc', 'b'), ('Gold', 'b'), ('Mercury', 'b');
	`); err != nil {
		log.Fatal(err)
	}

	platform := kb.NewPlatform()
	for _, u := range []string{"anna", "berta", "chiara"} {
		if err := platform.RegisterUser(u); err != nil {
			log.Fatal(err)
		}
	}

	// Anna and Berta work on pollutant elements; Chiara on geography.
	insert := func(user, s, p, o string) string {
		id, err := platform.Insert(user, rdf.Triple{S: smg(s), P: smg(p), O: smg(o)})
		if err != nil {
			log.Fatal(err)
		}
		return id
	}
	a1 := insert("anna", "Mercury", "isA", "Pollutant")
	a2 := insert("anna", "Lead", "isA", "Pollutant")
	insert("anna", "Mercury", "foundWith", "Lead")
	insert("berta", "Asbestos", "isA", "Pollutant")
	insert("chiara", "Torino", "inCountry", "Italy")

	// Berta has already imported some of Anna's knowledge → similar context.
	for _, id := range []string{a1, a2} {
		if err := platform.Import("berta", id); err != nil {
			log.Fatal(err)
		}
	}

	// --- peer discovery ---
	fmt.Println("Peer discovery for berta (belief overlap):")
	for _, p := range recommend.PeersByBeliefs(platform, "berta", 3) {
		fmt.Printf("  %-8s similarity %.2f\n", p.User, p.Score)
	}
	fmt.Println("\nPeer discovery for chiara (interest profile — no shared beliefs):")
	peers := recommend.PeersByInterests(platform, "chiara", 3)
	if len(peers) == 0 {
		fmt.Println("  (no peers share chiara's interests yet)")
	}

	// --- recommendations from the peer network ---
	fmt.Println("\nKnowledge recommended to anna (held by her similar peers):")
	for _, r := range recommend.RecommendStatements(platform, "anna", 5) {
		fmt.Printf("  %v  (score %.2f, via %v)\n", r.Statement.Triple, r.Score, r.Via)
	}

	// --- context-aware ranking and highlighting ---
	enricher := core.New(db, platform, nil)
	res, err := enricher.Query("anna", `SELECT elem_name, landfill_name FROM elem_contained`)
	if err != nil {
		log.Fatal(err)
	}
	view, err := platform.View("anna")
	if err != nil {
		log.Fatal(err)
	}
	ranked := preview.Rank(res, view, enricher.Mapping)
	fmt.Println("\nAnna's results, ranked by her context (score = facts she holds):")
	for i, row := range ranked.Result.Rows {
		fmt.Printf("  %5.1f  %s @ %s\n", ranked.Scores[i], row[0], row[1])
	}

	// --- snippets (content preview) ---
	fmt.Println("\nSnippet for 'Mercury' in anna's context:")
	for _, f := range preview.Snippet(view, enricher.Mapping, "Mercury", 5) {
		dir := "→"
		if !f.Outgoing {
			dir = "←"
		}
		fmt.Printf("  %s %s %s\n", dir, f.Property, f.Value)
	}
}
