// Smartground reproduces the paper's full running scenario: the Fig. 3
// databank fragment, a researcher's contextual knowledge base with a stored
// SPARQL query, and all six worked examples of Section IV (4.1-4.6),
// printing each SESQL query next to its enriched result and the Fig. 6
// stage timings.
package main

import (
	"fmt"
	"log"
	"strings"

	"crosse/internal/core"
	"crosse/internal/engine"
	"crosse/internal/kb"
	"crosse/internal/rdf"
)

func smg(local string) rdf.Term { return rdf.NewIRI(core.DefaultIRIPrefix + local) }

func main() {
	db := engine.Open()
	if _, err := db.ExecScript(`
		CREATE TABLE landfill (name TEXT PRIMARY KEY, city TEXT);
		CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT);
		INSERT INTO landfill VALUES ('a', 'Torino'), ('b', 'Milano'), ('c', 'Lyon');
		INSERT INTO elem_contained VALUES
			('Mercury', 'a'), ('Lead', 'a'), ('Zinc', 'a'),
			('Gold', 'b'), ('Mercury', 'b'), ('Lead', 'c');
	`); err != nil {
		log.Fatal(err)
	}

	platform := kb.NewPlatform()
	if err := platform.RegisterUser("researcher"); err != nil {
		log.Fatal(err)
	}

	// The researcher's context: danger levels, a hazard taxonomy, geography
	// and domain knowledge about element co-occurrence — none of which the
	// databank schema captures (the paper's motivating gap).
	facts := []rdf.Triple{
		{S: smg("Mercury"), P: smg("dangerLevel"), O: rdf.NewLiteral("high")},
		{S: smg("Lead"), P: smg("dangerLevel"), O: rdf.NewLiteral("high")},
		{S: smg("Zinc"), P: smg("dangerLevel"), O: rdf.NewLiteral("low")},
		{S: smg("Mercury"), P: smg("isA"), O: smg("HazardousWaste")},
		{S: smg("Lead"), P: smg("isA"), O: smg("HazardousWaste")},
		{S: smg("Asbestos"), P: smg("isA"), O: smg("HazardousWaste")},
		{S: smg("Torino"), P: smg("inCountry"), O: smg("Italy")},
		{S: smg("Milano"), P: smg("inCountry"), O: smg("Italy")},
		{S: smg("Lyon"), P: smg("inCountry"), O: smg("France")},
		{S: smg("Mercury"), P: smg("oreAssemblage"), O: smg("Lead")},
		{S: smg("Lead"), P: smg("oreAssemblage"), O: smg("Zinc")},
	}
	for _, f := range facts {
		if _, err := platform.Insert("researcher", f,
			kb.WithReference(kb.Reference{Title: "field notebook", Author: "researcher"})); err != nil {
			log.Fatal(err)
		}
	}

	// The paper's stored SPARQL query (Example 4.5): dangerQuery extracts
	// the list of dangerous elements from the contextual ontology.
	if err := platform.RegisterQuery("researcher", "dangerQuery",
		`SELECT ?x WHERE { ?x <`+core.DefaultIRIPrefix+`isA> <`+core.DefaultIRIPrefix+`HazardousWaste> }`); err != nil {
		log.Fatal(err)
	}

	enricher := core.New(db, platform, nil)

	examples := []struct{ title, query string }{
		{"Example 4.1 — SCHEMAEXTENSION", `SELECT elem_name, landfill_name
FROM elem_contained
WHERE landfill_name = 'a'
ENRICH
SCHEMAEXTENSION( elem_name, dangerLevel)`},
		{"Example 4.2 — SCHEMAREPLACEMENT", `SELECT name, city
FROM landfill
ENRICH
SCHEMAREPLACEMENT(city, inCountry)`},
		{"Example 4.3 — BOOLSCHEMAEXTENSION", `SELECT elem_name
FROM elem_contained
WHERE landfill_name = 'a'
ENRICH
BOOLSCHEMAEXTENSION( elem_name, isA, HazardousWaste)`},
		{"Example 4.4 — BOOLSCHEMAREPLACEMENT", `SELECT name, city
FROM landfill
ENRICH
BOOLSCHEMAREPLACEMENT(city, inCountry, Italy)`},
		{"Example 4.5 — REPLACECONSTANT (stored SPARQL query)", `SELECT landfill_name
FROM elem_contained
WHERE ${elem_name = HazardousWaste:cond1}
ENRICH
REPLACECONSTANT(cond1, HazardousWaste, dangerQuery)`},
		{"Example 4.6 — REPLACEVARIABLE (oreAssemblage)", `SELECT Elecond1.landfill_name AS l_name1,
 Elecond2.landfill_name AS l_name2,
 Elecond1.elem_name
FROM elem_contained AS Elecond1,
 elem_contained AS Elecond2
WHERE ${ Elecond1.elem_name <> Elecond2.elem_name:cond1} AND
 Elecond1.elem_name = Elecond2.elem_name
ENRICH
REPLACEVARIABLE(cond1, Elecond2.elem_name, oreAssemblage)`},
	}

	for _, ex := range examples {
		fmt.Println(strings.Repeat("=", 72))
		fmt.Println(ex.title)
		fmt.Println(strings.Repeat("=", 72))
		fmt.Println(ex.query)
		fmt.Println()
		res, stats, err := enricher.QueryStats("researcher", ex.query)
		if err != nil {
			log.Fatalf("%s: %v", ex.title, err)
		}
		fmt.Print(engine.FormatTable(res))
		fmt.Printf("stages: parse %v | base SQL %v | SPARQL %v | join %v | final SQL %v\n\n",
			stats.Parse, stats.BaseSQL, stats.SPARQL, stats.Join, stats.FinalSQL)
	}
}
