// Federation demonstrates the paper's data-integration substrate: a remote
// "EU registry" node serves its tables over the FDW wire protocol (the
// postgres_fdw role); the local CroSSE platform attaches them as foreign
// tables, joins them with local data, and runs a contextually-enriched
// SESQL query across the federation.
package main

import (
	"fmt"
	"log"

	"crosse/internal/core"
	"crosse/internal/dataset"
	"crosse/internal/engine"
	"crosse/internal/fdw"
	"crosse/internal/kb"
	"crosse/internal/rdf"
)

func main() {
	// --- remote node: a synthetic national registry ---
	remote := engine.Open()
	cfg := dataset.DefaultConfig()
	cfg.Landfills = 50
	if err := dataset.Populate(remote, cfg); err != nil {
		log.Fatal(err)
	}
	server := fdw.NewServer(remote.Catalog())
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()
	fmt.Println("remote registry node on", addr)

	// --- local platform: its own data + the remote tables attached ---
	local := engine.Open()
	if _, err := local.ExecScript(`
		CREATE TABLE my_sites (site TEXT, eu_landfill TEXT);
		INSERT INTO my_sites VALUES
			('site_alpha', 'landfill_0001'),
			('site_beta',  'landfill_0002'),
			('site_gamma', 'landfill_0003');
	`); err != nil {
		log.Fatal(err)
	}

	client, err := fdw.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	n, err := client.Attach(local.Catalog(), "eu_")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attached %d foreign table(s): %v\n\n", n, local.Catalog().Names())

	// A federated join: local sites against the remote registry.
	res, err := local.Query(`
		SELECT m.site, e.elem_name, e.amount
		FROM my_sites m JOIN eu_elem_contained e ON m.eu_landfill = e.landfill_name
		ORDER BY m.site, e.elem_name LIMIT 10`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("federated join (local my_sites × remote elem_contained):")
	fmt.Print(engine.FormatTable(res))

	// Context on top of federation: enrich the federated result with the
	// user's own hazard knowledge.
	platform := kb.NewPlatform()
	if err := platform.RegisterUser("analyst"); err != nil {
		log.Fatal(err)
	}
	smg := func(l string) rdf.Term { return rdf.NewIRI(core.DefaultIRIPrefix + l) }
	for _, elem := range []string{"element_000", "element_001", "element_002"} {
		if _, err := platform.Insert("analyst",
			rdf.Triple{S: smg(elem), P: smg("isA"), O: smg("HazardousWaste")}); err != nil {
			log.Fatal(err)
		}
	}
	enricher := core.New(local, platform, nil)

	res, err = enricher.Query("analyst", `
		SELECT m.site, e.elem_name
		FROM my_sites m JOIN eu_elem_contained e ON m.eu_landfill = e.landfill_name
		ENRICH
		BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe same federated data, enriched with the analyst's hazard context:")
	fmt.Print(engine.FormatTable(res))

	reqs, rows := client.Stats()
	fmt.Printf("\nFDW wire traffic: %d request(s), %d row(s) shipped\n", reqs, rows)
}
