// Crowdshare demonstrates the paper's crowdsourced-annotation vision
// (Sec. I-B, III-A): two users with different professional contexts get
// different answers from the same SESQL query; then one explores the
// other's public statements, imports part of them, and her answers change.
// Finally the whole platform state round-trips through the Fig. 4 reified
// RDF persistence format.
package main

import (
	"bytes"
	"fmt"
	"log"

	"crosse/internal/core"
	"crosse/internal/engine"
	"crosse/internal/kb"
	"crosse/internal/rdf"
)

func smg(local string) rdf.Term { return rdf.NewIRI(core.DefaultIRIPrefix + local) }

func main() {
	db := engine.Open()
	if _, err := db.ExecScript(`
		CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT);
		INSERT INTO elem_contained VALUES
			('Mercury', 'a'), ('Asbestos', 'a'), ('Zinc', 'a'), ('Gold', 'a');
	`); err != nil {
		log.Fatal(err)
	}

	platform := kb.NewPlatform()
	for _, u := range []string{"researcher", "city_planner"} {
		if err := platform.RegisterUser(u); err != nil {
			log.Fatal(err)
		}
	}

	// The researcher interprets "pollution" in a scientific context:
	// heavy metals are the hazard.
	if _, err := platform.Insert("researcher",
		rdf.Triple{S: smg("Mercury"), P: smg("isA"), O: smg("Pollutant")},
		kb.WithReference(kb.Reference{Title: "Heavy metals in mining waste", Author: "R. et al."})); err != nil {
		log.Fatal(err)
	}
	// The city planner interprets it in an urban-planning context:
	// asbestos is the concern.
	if _, err := platform.Insert("city_planner",
		rdf.Triple{S: smg("Asbestos"), P: smg("isA"), O: smg("Pollutant")}); err != nil {
		log.Fatal(err)
	}

	enricher := core.New(db, platform, nil)
	const query = `SELECT elem_name FROM elem_contained WHERE landfill_name = 'a'
ENRICH BOOLSCHEMAEXTENSION(elem_name, isA, Pollutant)`

	show := func(user string) {
		res, err := enricher.Query(user, query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s's view of \"pollutants in landfill a\" ---\n", user)
		fmt.Print(engine.FormatTable(res))
		fmt.Println()
	}

	fmt.Println("Same query, two personal contexts (Sec. I-B motivating scenario):")
	fmt.Println()
	show("researcher")
	show("city_planner")

	// Crowdsourcing: the planner explores the researcher's public
	// statements and accepts them as her own.
	fmt.Println("The city planner explores the researcher's public annotations:")
	for _, st := range platform.Explore(func(st *kb.Statement) bool { return st.Owner == "researcher" }) {
		ref := ""
		if st.Ref != nil {
			ref = fmt.Sprintf("  [ref: %s, %s]", st.Ref.Title, st.Ref.Author)
		}
		fmt.Printf("  %s: %s%s\n", st.ID, st.Triple, ref)
	}
	n, err := platform.ImportFrom("city_planner", "researcher", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n...and imports %d statement(s) into her own knowledge base.\n\n", n)
	show("city_planner")

	// Persistence: the whole platform state (users, statements, beliefs,
	// references) round-trips through the Fig. 4 reified RDF schema.
	var buf bytes.Buffer
	if err := platform.Save(&buf); err != nil {
		log.Fatal(err)
	}
	restored, err := kb.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Platform state: %d bytes of reified RDF; restored %d users, planner KB %d triples.\n",
		buf.Len(), len(restored.Users()), restored.ViewSize("city_planner"))
}
