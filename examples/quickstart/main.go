// Quickstart: the smallest end-to-end CroSSE program. Build a databank,
// register a user, annotate the data with personal context, and run a
// SESQL query that combines both.
package main

import (
	"fmt"
	"log"

	"crosse/internal/core"
	"crosse/internal/engine"
	"crosse/internal/kb"
	"crosse/internal/rdf"
)

func main() {
	// 1. The main platform: a relational databank.
	db := engine.Open()
	if _, err := db.ExecScript(`
		CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT);
		INSERT INTO elem_contained VALUES
			('Mercury', 'a'), ('Lead', 'a'), ('Zinc', 'a');
	`); err != nil {
		log.Fatal(err)
	}

	// 2. The semantic platform: per-user contextual knowledge.
	platform := kb.NewPlatform()
	if err := platform.RegisterUser("alice"); err != nil {
		log.Fatal(err)
	}
	smg := func(local string) rdf.Term { return rdf.NewIRI(core.DefaultIRIPrefix + local) }
	for _, t := range []rdf.Triple{
		{S: smg("Mercury"), P: smg("dangerLevel"), O: rdf.NewLiteral("high")},
		{S: smg("Lead"), P: smg("dangerLevel"), O: rdf.NewLiteral("high")},
		{S: smg("Zinc"), P: smg("dangerLevel"), O: rdf.NewLiteral("low")},
	} {
		if _, err := platform.Insert("alice", t); err != nil {
			log.Fatal(err)
		}
	}

	// 3. The Semantic Query Module ties them together.
	enricher := core.New(db, platform, nil)

	// 4. A SESQL query: plain SQL plus an ENRICH clause.
	res, err := enricher.Query("alice", `
		SELECT elem_name, landfill_name
		FROM elem_contained
		WHERE landfill_name = 'a'
		ENRICH
		SCHEMAEXTENSION(elem_name, dangerLevel)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(engine.FormatTable(res))
}
