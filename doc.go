// Package crosse is a from-scratch Go reproduction of "Contextually-Enriched
// Querying of Integrated Data Sources" (Cavallo, Di Mauro, Pasteris, Sapino,
// Candan — ICDE 2018): the CroSSE platform and its SESQL query language,
// in which a relational databank is enriched at query time with per-user
// crowdsourced RDF context.
//
// The root package only anchors the repository-level benchmarks
// (bench_test.go); the system lives under internal/:
//
//	internal/core     the Fig. 6 enrichment pipeline (the paper's contribution)
//	internal/sesql    the SESQL language front-end (Fig. 5 grammar)
//	internal/kb       crowdsourced knowledge bases (Fig. 4 schema)
//	internal/sparql   SPARQL subset engine
//	internal/rdf      indexed triple store
//	internal/engine   embedded relational database (SQL parser + executor)
//	internal/fdw      foreign-data-wrapper federation (postgres_fdw role)
//	internal/rest     HTTP/JSON integration API
//	internal/dataset  synthetic SmartGround databank + ontologies
//	internal/experiments  the measurement study (EXPERIMENTS.md)
//
// # Storage and query-compilation architecture
//
// The triple store (internal/rdf) is dictionary-encoded: every distinct RDF
// term is interned once into a dense uint32 ID (rdf.Dict), and the three
// permutation indexes (SPO, POS, OSP) plus a flat membership set are keyed
// on those IDs. Pattern cardinalities — the probes the SPARQL join orderer
// issues per candidate pattern — are answered in O(1) from per-sub-index
// counters and set lengths, never by enumeration. Store.Clone provides
// point-in-time snapshots by bulk-copying the encoded indexes under a
// single lock (the KB layer maintains its per-user views incrementally via
// Add/Remove; Clone serves callers that need an independent copy).
//
// The enrichment pipeline (internal/core) keeps a compiled-query cache for
// both SESQL and SPARQL, keyed on the exact query text. Compiled plans hold
// structure only, no data, so knowledge-base mutations never invalidate
// cache entries — a cached plan simply re-evaluates against the updated
// graph. Repeated enrichment queries therefore skip lexing and parsing
// entirely (see QueryCache in internal/core).
//
// See README.md for a tour and DESIGN.md for the reproduction inventory.
package crosse
