// Package crosse is a from-scratch Go reproduction of "Contextually-Enriched
// Querying of Integrated Data Sources" (Cavallo, Di Mauro, Pasteris, Sapino,
// Candan — ICDE 2018): the CroSSE platform and its SESQL query language,
// in which a relational databank is enriched at query time with per-user
// crowdsourced RDF context.
//
// The root package only anchors the repository-level benchmarks
// (bench_test.go); the system lives under internal/:
//
//	internal/core     the Fig. 6 enrichment pipeline (the paper's contribution)
//	internal/sesql    the SESQL language front-end (Fig. 5 grammar)
//	internal/kb       crowdsourced knowledge bases (Fig. 4 schema)
//	internal/sparql   SPARQL subset engine
//	internal/rdf      indexed triple store
//	internal/engine   embedded relational database (SQL parser + executor)
//	internal/fdw      foreign-data-wrapper federation (postgres_fdw role)
//	internal/rest     HTTP/JSON integration API
//	internal/dataset  synthetic SmartGround databank + ontologies
//	internal/experiments  the measurement study (EXPERIMENTS.md)
//
// # Storage and query-compilation architecture
//
// The triple store (internal/rdf) is dictionary-encoded: every distinct RDF
// term is interned once into a dense uint32 ID (rdf.Dict), and the three
// permutation indexes (SPO, POS, OSP) plus a flat membership set are keyed
// on those IDs. Pattern cardinalities — the probes the SPARQL join orderer
// issues per candidate pattern — are answered in O(1) from per-sub-index
// counters and set lengths, never by enumeration. The encoded layer is
// public: rdf.PatternIDs / Store.ForEachIDs / Store.CountIDs match and
// count without decoding a single term, Dict.TermOf / Dict.IDOf translate
// at the edges, and Store.ReadIDs opens a one-lock read transaction whose
// rdf.IDReader serves nested probes lock-free — the access shape of a join.
// Store.Clone provides point-in-time snapshots by bulk-copying the encoded
// indexes under a single lock.
//
// Per-user knowledge bases are overlay views over one shared arena
// (rdf.SharedStore + rdf.View): the platform interns and indexes every
// asserted triple exactly once — one dictionary, one set of refcounted
// union indexes — and each user's view holds only ID-level state, a
// membership set of encoded rdf.TripleKeys plus per-view counters that
// answer every pattern-cardinality shape in O(1). Importing a peer's
// belief is therefore a handful of small-key map updates (no term is ever
// re-hashed), N users sharing a corpus cost O(corpus) string memory plus
// compact per-view overlays, and view iteration picks the cheaper side per
// pattern: the shared posting list filtered by membership, or the
// membership set filtered by the pattern. Views implement rdf.Graph and
// rdf.IDGraph, so everything below this paragraph applies to them
// unchanged; mutations take the arena or view write lock briefly and never
// invalidate an in-flight read transaction, which lets queries over
// distinct users' views run concurrently.
//
// SPARQL evaluation (internal/sparql) is a compiled, ID-native, streaming
// executor. sparql.Compile lowers a parsed query into an immutable physical
// Plan: every variable gets a dense slot index, triple patterns and
// property paths reference slots plus a shared constant table, FILTER
// expressions become slot-resolved evaluator trees with constant regex()
// patterns precompiled (invalid ones fail at compile time), and projection,
// ORDER BY and DISTINCT are resolved to slot lists. A solution in flight is
// a []rdf.TermID row, not a string-keyed map: BGP joins run as a push-based
// backtracking pipeline under one Store.ReadIDs transaction, filters
// execute at the first join step where their variables are bound, DISTINCT
// deduplicates on projected ID tuples, ASK and LIMIT-without-ORDER-BY
// terminate the pipeline early, and terms are decoded only at projection.
// Plan.Stream exposes the zero-materialisation path (no Binding maps);
// Eval/EvalQuery keep the map-based Result for compatibility.
//
// SQL evaluation (internal/sqlexec) mirrors the same design on the
// relational side. sqlexec.Compile lowers a parsed SELECT once into an
// immutable physical SelectPlan: every column reference resolves to a
// dense row-slot offset at compile time, expressions become slot-resolved
// evaluator trees (constant LIKE patterns pre-lowered to segment
// matchers), WHERE splits into conjuncts bound to the earliest pipeline
// step whose sources cover them, equality-against-constant conjuncts push
// into sqldb hash-index seeks (Table.ScanEq) — or, for foreign tables,
// ship to the remote node over the FDW protocol — equi-joins run as hash
// joins whose build side is chosen from live cardinalities, and ORDER BY
// + LIMIT keeps a bounded stable top-K heap instead of sorting the world.
// Execution is a push-based pipeline over one reused row buffer with
// arena-backed materialisation only at the sink; LIMIT without ORDER BY
// stops the pipeline early. Plan ablation knobs (hash joins, index seeks,
// top-K) live in sqlexec.Options — per call, not a package global. The
// seed's interpreter survives as the reference oracle the randomised
// parity suite (internal/sqlexec/parity_test.go) pins the compiled
// semantics to.
//
// # Intra-query parallel execution
//
// Both executors share a morsel-driven scheduler (internal/exec): the
// query's driving input — the base-table scan on the SQL side, the head
// pattern's posting list on the SPARQL side — is materialised once in
// serial enumeration order and partitioned into fixed-size morsels; a
// bounded worker pool claims morsel indexes from an atomic counter and
// each worker runs the full compiled pipeline (joins, filters,
// projection) with private execution state, against shared state frozen
// before the first worker starts (hash tables and materialised join
// sides in SQL, the resolved constant table and one read transaction in
// SPARQL — which requires an rdf.ConcurrentReader, a reader whose probes
// are pure reads under the transaction lock). SQL heap tables implement
// sqldb.StableRowScanner — scanned rows are immutable in place, updates
// replace rows wholesale — so materialisation retains the stored rows
// zero-copy. Output is buffered per morsel (or stamped with its
// (morsel, sequence) arrival position) and merged in morsel order, which
// makes the parallel result byte-identical to the serial one: same rows,
// same order, same ties, same first error.
//
// Every parallel reduction follows one rule: workers may compute their
// partials in any interleaving, but partials FOLD in morsel order, and
// float folds are Neumaier-compensated — so the reduction is not merely
// order-insensitive "close enough" arithmetic but reproduces the serial
// accumulation bit for bit. Under that rule every standard aggregate
// merges (COUNT/SUM as sums, MIN/MAX with arrival stamps breaking ties,
// float SUM/AVG as per-morsel compensated partials, DISTINCT aggregates
// as first-occurrence maps keeping the earliest stamp); hash-join builds
// partition the build side and merge per-worker bucket maps in morsel
// order on a two-phase barrier pool (exec.PhasedPool); ORDER BY with
// LIMIT unions per-worker bounded top-K heaps, and ORDER BY without
// LIMIT sorts per-worker runs concurrently and merges them with a loser
// tree (exec.LoserTree, ties to the earlier morsel — exactly the serial
// stable sort); SPARQL property-path heads materialise the path frontier
// once and fan the pairs out like any posting list; a contiguous
// completed-morsel prefix can prove a LIMIT satisfied and cancel the
// remaining morsels. Shapes that still cannot merge exactly fall back to
// serial — ASK (first match wins), non-mergeable aggregate functions,
// foreign-table scans, graph readers without rdf.ConcurrentReader, and
// inputs below the morsel threshold where fan-out costs more than it
// wins — and every fallback names its reason:
// sqlexec/sparql Result.ParallelFallback (and the streaming StreamInfo)
// carry it per query, core.Stats.ParallelFallback aggregates the stages
// ("base-sql: ...", "sparql: ...", "final-sql: ..."), and the REST stats
// object surfaces it as parallel_fallback, so "why didn't this query
// parallelise" is an API field, not a profiling session. The knob is
// sqlexec.Options.Parallelism / sparql.Options.Parallelism /
// core.Enricher.SetParallelism (0 = GOMAXPROCS, 1 = serial); parity
// suites run every test at 1, 2 and 4 workers, and a determinism suite
// requires ORDER BY (+ OFFSET/LIMIT) output to be byte-identical across
// parallelism levels on tie-heavy keys.
//
// The enrichment pipeline (internal/core) keeps a compiled-query cache for
// SESQL, SPARQL and SQL, keyed on the exact query text. For SPARQL the
// cache stores the compiled physical Plan — slot table, join-ready
// patterns, precompiled regexes — so a cache hit goes straight to ID-native
// execution with no lexing, parsing or planning. Plans hold structure only,
// never data or dictionary IDs (constants re-resolve against the target
// graph's dictionary per evaluation), so knowledge-base mutations never
// invalidate cache entries and one cached plan serves every user's view
// concurrently (see QueryCache in internal/core). SQL physical plans do
// bind to the catalog (relation handles, index choices), so their cache
// entries carry sqldb.Database.SchemaEpoch: any DDL — CREATE/DROP TABLE,
// CREATE INDEX, foreign registration — bumps the epoch and stale plans
// recompile on next lookup, while data mutations never invalidate. Both
// SESQL's cleaned base query (Fig. 6's relational step, on the hot path of
// every enriched request) and plain SQL fast-path queries stream their
// rows directly into the JoinManager's workset through cached plans.
//
// # Persistence and recovery
//
// The platform is durable through versioned binary snapshots that serialise
// the encoded layer directly (format version 1). rdf.SharedStore.WriteSnapshot
// writes the dictionary term table and every asserted triple as its raw
// TripleKey plus assertion refcount; rdf.View.WriteSnapshot writes a view's
// membership set as raw keys; kb.Platform.Snapshot frames those together
// with statements (provenance, believers, references), stored queries,
// vocabulary declarations and the id counter; and core.WriteImage combines
// the kb snapshot with the engine's SQL dump into one checksummed
// (CRC-32) platform image — core.ReadImage / kb.Restore /
// rdf.ReadSharedSnapshot are the inverses. Restore is a bulk ID-level load:
// triples and view members come back as integer keys inserted into presized
// maps, per-view counters are rebuilt in the same pass, statement triples
// decode from the restored dictionary, and only the dictionary's intern
// maps hash strings — once per distinct term, not per triple. Cold-starting
// a 100k-triple multi-user platform from a snapshot is roughly an order of
// magnitude faster than rebuilding it from the reified N-Triples export
// (BenchmarkSnapshotLoad), and equal believer sets are shared across
// restored statements under the copy-on-write discipline.
//
// Between images, a write-ahead log (internal/wal + core.Journal) bounds
// data loss to the acknowledged operation. The log is an append-only
// stream of CRC-32-framed, length-prefixed records over the snapshot
// codec's varint conventions; records carry no explicit LSN (record i of
// a log whose header anchors startLSN s has LSN s+i+1, gap-free by
// construction). Every platform mutation routed through a core.Journal
// applies in memory and appends exactly one record under one lock — so
// log order is application order and replay reproduces statement ids —
// then waits for durability outside the lock, which lets one fsync
// acknowledge every record appended while the previous fsync was in
// flight (group commit; wal.SyncPolicy selects fsync-per-ack, periodic
// fsync, or none). Platform images are LSN-anchored (format version 2):
// recovery loads the newest image and replays exactly the records past
// its anchor. A torn tail — a final record cut off mid-frame or failing
// its checksum at end of file — is crash residue of an unacknowledged
// append and is silently truncated; damage with intact records after it
// is bit rot and fails loudly (wal.ErrCorrupt). Compaction
// (Journal.Compact) writes a fresh image at the current LSN and then
// atomically rotates in an empty log anchored there, so a crash between
// the two steps only leaves records the new image already shadows. Any
// append/fsync failure wedges the journal permanently rather than let
// in-memory state run ahead of the durable log. The guarantees are
// enforced twice: a fault-injection property suite
// (internal/core/crash_test.go over wal.MemFS + wal.FaultFS) crashes
// randomized workloads at arbitrary write/sync boundaries in-process,
// and cmd/walcheck + the CI wal-crash-recovery job kill -9 a real
// serving process mid-workload and diff recovery against exactly the
// acknowledged operations.
//
// Operationally, cmd/crosse-server runs journaled with -wal DIR (with
// -wal-sync always|interval|never and periodic -compact-interval), or
// with image-only persistence via -snapshot: it loads the image on boot
// when the file exists, saves atomically on SIGINT/SIGTERM and every
// -snapshot-interval, exits non-zero when the shutdown save fails (a
// second signal forces immediate exit), and the REST layer exposes
// GET /api/admin/snapshot (stream a backup), POST /api/admin/snapshot
// (persist to the configured path), GET /api/admin/wal (log position and
// sync counters) and POST /api/admin/compact. cmd/snapcheck proves
// cold-start recovery in CI: it saves an image plus recorded probe
// results, restores in a fresh process, and diffs SESQL/SPARQL results
// and pattern counts.
//
// # Federation and fault tolerance
//
// Remote databanks attach over the FDW protocol (internal/fdw, the
// postgres_fdw role) as foreign tables the SQL executor scans like local
// ones, with equality predicates pushed to the remote node. The client is
// resilient by default. Every round trip — send, stream, drain — runs
// under a deadline (Config.RequestTimeout, default 30s, tightened per call
// by the caller's context and enforced through net.Conn.SetDeadline, so a
// stalled peer costs one deadline, never a hung query; context
// cancellation fires the connection deadline immediately). Transient
// transport failures (dial refused, reset, torn stream) retry with capped
// exponential backoff plus jitter on a fresh connection (Config.Retry);
// the protocol is stateless per request, so re-dialling re-attaches the
// session transparently and foreign tables keep working across peer
// restarts. Retries only happen while no row has reached the consumer —
// a stream that fails after delivering rows surfaces fdw.ErrInterrupted
// rather than silently duplicating or truncating — and remote application
// errors (the peer answered in-protocol) never retry and never poison the
// connection. A per-source circuit breaker (closed/open/half-open,
// Config.Breaker) opens after FailureThreshold consecutive failures; while
// open, operations fail fast with fdw.ErrSourceDown (no network touch)
// until the probe interval admits one request as the half-open probe,
// whose success readmits the source. fdw.Health registers every attached
// client, pings each on an interval (the probe that heals an open circuit
// with no query traffic), and exposes per-source state, the error holding
// the circuit open, and request/retry/trip counters.
//
// Degradation is a query-level choice: by default a query touching a
// down source fails fast with a typed error (REST answers 503), while
// sqlexec.Options.PartialResults — crosse-server -partial-results — skips
// scans that fail with sqldb.ErrSourceDown and reports the skipped source
// names on the result (Result.SkippedSources, core.Stats.SkippedSources,
// "degraded_sources" in the REST response), so a federated query over N
// registries survives one dark registry and says exactly what is missing.
// Operationally, GET /healthz is the liveness probe (200 while the node
// serves queries, 503 only when the journal is wedged; degraded sources
// mark status "degraded" without failing the probe) and
// GET /api/admin/sources dumps the full per-source resilience state. The
// guarantees are enforced twice: a randomized fault-injection property
// suite (internal/fdw/fault_test.go over fdw.FaultConn — latency, wrong
// errors, short writes, hangups and blackholes injected at arbitrary
// protocol operations) asserts every trial ends within its deadline with
// either the complete correct result or a typed error, and the CI
// fdw-fault-injection job kill -9s a real fdw-server mid-scan, watches
// the circuit open over the REST API, verifies the degraded partial
// response, and verifies the half-open probe readmits the restarted node.
//
// # Serving tier
//
// The REST surface (internal/rest) is versioned: the public API lives
// under /api/v1/..., legacy unversioned /api/... paths answer as
// deprecated thin aliases for one release (Deprecation + Link
// successor-version headers, once-per-path log notice), and every error
// response is a uniform {"error": {code, message, details}} envelope with
// a typed error→status mapping (kb.ErrUnknownUser/ErrNoStatement → 404,
// kb.DupError → 409, serve.ErrOverloaded → 429, fdw.ErrSourceDown and
// core.ErrWedged → 503, parse/validation → 400). Collection endpoints
// paginate with limit/offset plus a pre-pagination total (default 100,
// max 1000). Execution options are unified in core.ExecOptions — one
// struct projected into sqlexec.Options and sparql.Options — instead of
// per-package plumbing. docs/API.md is the contract; the CI api-contract
// job boots the real binary and fails on envelope drift.
//
// In front of the handlers sits internal/serve, the heavy-traffic tier:
//
//   - An enriched-result cache (serve.Cache, LRU bounded by entries and
//     bytes) keyed on (user, query text, language, options, view epoch,
//     schema epoch). kb.Platform maintains the view epoch: every
//     mutation that can change what a user's enrichment sees —
//     Insert, Import, Retract (an owner retract bumps every believer),
//     personal stored-query registration; shared stored queries bump a
//     global component — advances it, so invalidation is free: stale
//     entries become unreachable and age out rather than being hunted
//     down. The epoch is read before evaluation, so a mutation landing
//     mid-query strands that entry under the old epoch instead of
//     serving pre-mutation rows under the new one. Degraded federated
//     results are never cached (circuit state is not covered by epochs).
//     Every query response reports stats.cache_hit and stats.elapsed_us.
//   - Per-endpoint request metrics (serve.Metrics): request counts,
//     in-flight gauges, status classes and fixed-bucket latency
//     histograms (p50/p95/p99), exposed at GET /api/v1/metrics together
//     with cache, admission, plan-cache, circuit and WAL state. Legacy
//     aliases fold into the v1 endpoint label.
//   - Admission control (serve.Limiter) on the query-execution
//     endpoints: at most -max-inflight requests execute, at most
//     -inflight-queue wait, the rest shed immediately as typed 429s —
//     saturation degrades into fast rejections instead of a goroutine
//     pile-up.
//
// BenchmarkServeLoad (serve_bench_test.go) drives the real HTTP handler
// with simulated users under cached-repeat, uncached and mixed
// query/mutate workloads; its QPS lands in BENCH.json next to the ns/op
// trajectory. On the CI-class dev box the cached-repeat workload serves
// ~10x the uncached QPS, and a -race suite hammers cached queries
// against journaled mutations asserting read-your-writes.
//
// See README.md for a tour and DESIGN.md for the reproduction inventory.
package crosse
