// Package crosse is a from-scratch Go reproduction of "Contextually-Enriched
// Querying of Integrated Data Sources" (Cavallo, Di Mauro, Pasteris, Sapino,
// Candan — ICDE 2018): the CroSSE platform and its SESQL query language,
// in which a relational databank is enriched at query time with per-user
// crowdsourced RDF context.
//
// The root package only anchors the repository-level benchmarks
// (bench_test.go); the system lives under internal/:
//
//	internal/core     the Fig. 6 enrichment pipeline (the paper's contribution)
//	internal/sesql    the SESQL language front-end (Fig. 5 grammar)
//	internal/kb       crowdsourced knowledge bases (Fig. 4 schema)
//	internal/sparql   SPARQL subset engine
//	internal/rdf      indexed triple store
//	internal/engine   embedded relational database (SQL parser + executor)
//	internal/fdw      foreign-data-wrapper federation (postgres_fdw role)
//	internal/rest     HTTP/JSON integration API
//	internal/dataset  synthetic SmartGround databank + ontologies
//	internal/experiments  the measurement study (EXPERIMENTS.md)
//
// See README.md for a tour and DESIGN.md for the reproduction inventory.
package crosse
