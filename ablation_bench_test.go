// Ablation benchmarks for the two planner fast paths DESIGN.md calls out.
// Run with: go test -bench=Ablation -benchmem .
package crosse

import (
	"fmt"
	"testing"

	"crosse/internal/dataset"
	"crosse/internal/engine"
	"crosse/internal/rdf"
	"crosse/internal/sparql"
	"crosse/internal/sqlexec"
)

// BenchmarkAblationHashJoin shows what the equi-join hash fast path buys:
// the paper's Example 4.6 self-join shape becomes quadratic without it.
func BenchmarkAblationHashJoin(b *testing.B) {
	db := engine.Open()
	cfg := dataset.DefaultConfig()
	cfg.Landfills = 100 // ~1k rows; nested loop = ~1M probes
	if err := dataset.Populate(db, cfg); err != nil {
		b.Fatal(err)
	}
	const q = `SELECT COUNT(*) FROM elem_contained e1, elem_contained e2
WHERE e1.elem_name = e2.elem_name`

	for _, disabled := range []bool{false, true} {
		name := "HashJoin"
		if disabled {
			name = "NestedLoop"
		}
		b.Run(name, func(b *testing.B) {
			opts := sqlexec.Options{DisableHashJoin: disabled}
			for i := 0; i < b.N; i++ {
				if _, err := db.QueryOpts(q, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBGPOrder shows what greedy selectivity-first BGP join
// ordering buys: a query written unselective-pattern-first is rescued by
// the reordering and pathological without it.
func BenchmarkAblationBGPOrder(b *testing.B) {
	const ns = "http://smartground.eu/onto#"
	st := rdf.NewStore()
	for i := 0; i < 20000; i++ {
		s := rdf.NewIRI(fmt.Sprintf("%se%d", ns, i))
		st.Add(rdf.Triple{S: s, P: rdf.NewIRI(ns + "common"), O: rdf.NewIRI(ns + "thing")})
		if i == 7 {
			st.Add(rdf.Triple{S: s, P: rdf.NewIRI(ns + "rare"), O: rdf.NewIRI(ns + "needle")})
		}
	}
	// Written worst-first: the unselective pattern appears first.
	const q = `SELECT ?x WHERE { ?x <` + ns + `common> <` + ns + `thing> . ?x <` + ns + `rare> <` + ns + `needle> }`

	for _, disabled := range []bool{false, true} {
		name := "GreedyOrder"
		if disabled {
			name = "SourceOrder"
		}
		b.Run(name, func(b *testing.B) {
			opts := sparql.Options{DisableReorder: disabled}
			for i := 0; i < b.N; i++ {
				if _, err := sparql.EvalOpts(st, q, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
