// End-to-end integration tests: the full CroSSE deployment shape — a remote
// FDW data node, the main platform with foreign tables attached, the
// semantic platform with multiple users, the REST API on top — exercised
// through the same paths the binaries use.
package crosse

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"crosse/internal/core"
	"crosse/internal/dataset"
	"crosse/internal/engine"
	"crosse/internal/fdw"
	"crosse/internal/kb"
	"crosse/internal/rest"
)

// deployment wires the whole system the way cmd/crosse-server does.
type deployment struct {
	ts       *httptest.Server
	enricher *core.Enricher
}

func deploy(t *testing.T) *deployment {
	t.Helper()

	// Remote registry node.
	remote := engine.Open()
	cfg := dataset.DefaultConfig()
	cfg.Landfills = 30
	if err := dataset.Populate(remote, cfg); err != nil {
		t.Fatal(err)
	}
	srv := fdw.NewServer(remote.Catalog())
	a, b := net.Pipe()
	go srv.ServeConn(a)
	client := fdw.NewClient(b)
	t.Cleanup(func() { client.Close() })

	// Main platform with local data + attached foreign tables.
	local := engine.Open()
	if _, err := local.ExecScript(`
		CREATE TABLE my_sites (site TEXT, eu_landfill TEXT);
		INSERT INTO my_sites VALUES
			('alpha', 'landfill_0001'), ('beta', 'landfill_0002')`); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Attach(local.Catalog(), "eu_"); err != nil {
		t.Fatal(err)
	}

	platform := kb.NewPlatform()
	if err := dataset.RegisterDangerQuery(platform); err != nil {
		t.Fatal(err)
	}
	enricher := core.New(local, platform, nil)
	platform.SetConceptChecker(core.NewConceptChecker(local, enricher.Mapping))

	ts := httptest.NewServer(rest.NewServer(enricher).Handler())
	t.Cleanup(ts.Close)
	return &deployment{ts: ts, enricher: enricher}
}

func (d *deployment) call(t *testing.T, method, path string, body any) (int, map[string]any) {
	t.Helper()
	var payload []byte
	if body != nil {
		var err error
		payload, err = json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, d.ts.URL+path, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestEndToEndFederatedEnrichedQuery(t *testing.T) {
	d := deploy(t)

	// Federated tables are visible through the API.
	_, out := d.call(t, "GET", "/api/tables", nil)
	tables := out["tables"].([]any)
	names := map[string]bool{}
	for _, tb := range tables {
		names[tb.(map[string]any)["name"].(string)] = true
	}
	for _, want := range []string{"my_sites", "eu_landfill", "eu_elem_contained"} {
		if !names[want] {
			t.Fatalf("table %s missing from %v", want, names)
		}
	}

	// A user annotates elements as hazardous, via the API.
	d.call(t, "POST", "/api/users", map[string]string{"name": "analyst"})
	for _, e := range []string{"element_000", "element_001"} {
		code, resp := d.call(t, "POST", "/api/statements", map[string]any{
			"user": "analyst", "subject": e, "property": "isA", "object": "HazardousWaste",
		})
		if code != http.StatusCreated {
			t.Fatalf("annotate %s: %d %v", e, code, resp)
		}
	}

	// A SESQL query joining LOCAL data against the REMOTE registry,
	// enriched with the analyst's context — every subsystem in one query.
	code, out := d.call(t, "POST", "/api/query", map[string]any{
		"user": "analyst",
		"sesql": `SELECT m.site, e.elem_name
FROM my_sites m JOIN eu_elem_contained e ON m.eu_landfill = e.landfill_name
ENRICH BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)`,
		"stats": true,
	})
	if code != http.StatusOK {
		t.Fatalf("federated enriched query: %d %v", code, out)
	}
	cols := out["columns"].([]any)
	if len(cols) != 3 || cols[2] != "isA" {
		t.Fatalf("columns = %v", cols)
	}
	rows := out["rows"].([]any)
	if len(rows) == 0 {
		t.Fatal("no rows from federated join")
	}
	sawTrue, sawFalse := false, false
	for _, r := range rows {
		switch r.([]any)[2] {
		case "true":
			sawTrue = true
		case "false":
			sawFalse = true
		}
	}
	if !sawTrue || !sawFalse {
		t.Errorf("boolean enrichment uninformative: true=%v false=%v", sawTrue, sawFalse)
	}
	if out["stats"] == nil {
		t.Error("stats missing")
	}
}

func TestEndToEndCrowdsourcingAndRecommendation(t *testing.T) {
	d := deploy(t)
	for _, u := range []string{"expert", "novice"} {
		d.call(t, "POST", "/api/users", map[string]string{"name": u})
	}
	// The expert publishes knowledge; the novice imports one statement.
	var firstID string
	for i := 0; i < 3; i++ {
		_, out := d.call(t, "POST", "/api/statements", map[string]any{
			"user": "expert", "subject": fmt.Sprintf("element_%03d", i),
			"property": "isA", "object": "HazardousWaste"})
		if firstID == "" {
			firstID = out["id"].(string)
		}
	}
	d.call(t, "POST", "/api/statements/"+firstID+"/import", map[string]string{"user": "novice"})

	// The novice's peers: the expert.
	_, out := d.call(t, "GET", "/api/peers?user=novice", nil)
	peers := out["peers"].([]any)
	if len(peers) != 1 || peers[0].(map[string]any)["user"] != "expert" {
		t.Fatalf("peers = %v", peers)
	}

	// Recommendations: the expert's other two statements.
	_, out = d.call(t, "GET", "/api/recommendations?user=novice", nil)
	recs := out["recommendations"].([]any)
	if len(recs) != 2 {
		t.Fatalf("recs = %v", recs)
	}

	// Import one recommendation and query with the new context.
	recID := recs[0].(map[string]any)["statement"].(map[string]any)["id"].(string)
	d.call(t, "POST", "/api/statements/"+recID+"/import", map[string]string{"user": "novice"})
	code, out := d.call(t, "POST", "/api/query", map[string]any{
		"user":  "novice",
		"sesql": `SELECT elem_name FROM eu_elem_contained ENRICH BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)`,
	})
	if code != http.StatusOK {
		t.Fatalf("query: %d %v", code, out)
	}
	trueCount := 0
	for _, r := range out["rows"].([]any) {
		if r.([]any)[1] == "true" {
			trueCount++
		}
	}
	if trueCount == 0 {
		t.Error("imported knowledge must affect enrichment")
	}
}

func TestEndToEndStatsShapesSane(t *testing.T) {
	d := deploy(t)
	d.call(t, "POST", "/api/users", map[string]string{"name": "u"})
	d.call(t, "POST", "/api/statements", map[string]any{
		"user": "u", "subject": "element_000", "property": "dangerLevel",
		"object": "high", "object_literal": true})
	_, out := d.call(t, "POST", "/api/query", map[string]any{
		"user":  "u",
		"sesql": `SELECT elem_name FROM eu_elem_contained ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)`,
		"stats": true,
	})
	stats := out["stats"].(map[string]any)
	if stats["base_rows"].(float64) <= 0 || stats["final_rows"].(float64) <= 0 {
		t.Errorf("row counts: %v", stats)
	}
	sparqls := stats["sparql_queries"].([]any)
	if len(sparqls) != 1 || !strings.Contains(sparqls[0].(string), "dangerLevel") {
		t.Errorf("sparql queries: %v", sparqls)
	}
	// A schema-only enrichment needs no final SQL: the projection is
	// answered from the join buffer, so the stats report an empty text.
	if s, ok := stats["final_sql"].(string); ok && s != "" {
		t.Errorf("final sql should be skipped for a pure projection: %v", s)
	}
}
