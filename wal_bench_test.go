// Write-ahead log benchmarks: acknowledgement latency per sync policy,
// group-commit throughput under concurrent writers, and recovery replay
// speed. These are the regression trackers for the durability subsystem;
// the acceptance bar is an Interval-policy acknowledgement well under
// 10µs, since that is the path every platform mutation takes in a
// journal-backed server.
package crosse

import (
	"path/filepath"
	"testing"

	"crosse/internal/wal"
)

func benchWALPayload() []byte {
	// Sized like a typical logged mutation (an Insert record with a
	// reference runs ~80 bytes).
	p := make([]byte, 96)
	for i := range p {
		p[i] = byte(i)
	}
	return p
}

func BenchmarkWALAppend(b *testing.B) {
	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval, wal.SyncNever} {
		b.Run(policy.String(), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "bench.log")
			l, err := wal.Open(path, wal.Options{Sync: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			payload := benchWALPayload()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.AppendSync(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGroupCommit measures acknowledged appends per second when many
// writers commit concurrently under SyncAlways: the group-commit core
// shares each fsync among every record appended while the previous fsync
// was in flight, so per-ack cost should fall well below one fsync.
func BenchmarkGroupCommit(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.log")
	l, err := wal.Open(path, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := benchWALPayload()
	b.SetBytes(int64(len(payload)))
	b.SetParallelism(8) // writers per core: batching needs concurrent committers
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := l.AppendSync(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	st := l.StatusNow()
	b.ReportMetric(float64(st.Appends)/float64(max(st.Syncs, 1)), "appends/fsync")
}

func BenchmarkWALReplay(b *testing.B) {
	const records = 2000
	path := filepath.Join(b.TempDir(), "bench.log")
	l, err := wal.Open(path, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	payload := benchWALPayload()
	for i := 0; i < records; i++ {
		if _, err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(records * len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got int
		r, err := wal.Open(path, wal.Options{
			Replay: func(lsn uint64, p []byte) error { got++; return nil },
		})
		if err != nil {
			b.Fatal(err)
		}
		if got != records {
			b.Fatalf("replayed %d records, want %d", got, records)
		}
		r.Close()
	}
	b.ReportMetric(float64(records), "records/replay")
}
