// Command sesql is an interactive SESQL shell over the sample SmartGround
// databank: the fastest way to experience contextually-enriched querying.
//
// Usage:
//
//	sesql                      # REPL on the paper's Fig. 3 sample data
//	sesql -scale 500           # synthetic databank with 500 landfills
//	sesql -e "SELECT ..."      # run one query and exit
//	sesql -user bob            # start as a different (new) user
//
// REPL meta-commands:
//
//	\tables          list relations
//	\user NAME       switch/create user
//	\kb              show the current user's knowledge base
//	\tag S P O       insert an annotation (independent scenario)
//	\import USER     import all of USER's statements
//	\stats           toggle per-stage timing output
//	\quit            exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"crosse/internal/core"
	"crosse/internal/dataset"
	"crosse/internal/engine"
	"crosse/internal/kb"
	"crosse/internal/rdf"
)

func main() {
	var (
		scale = flag.Int("scale", 0, "synthetic databank size (0 = paper sample data)")
		eval  = flag.String("e", "", "evaluate one SESQL query and exit")
		user  = flag.String("user", "alice", "initial user name")
	)
	flag.Parse()

	enr, err := buildPlatform(*scale, *user)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *eval != "" {
		if err := runQuery(enr, *user, *eval, false); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("CroSSE SESQL shell — type \\help for meta-commands")
	repl(enr, *user)
}

func buildPlatform(scale int, user string) (*core.Enricher, error) {
	db := engine.Open()
	p := kb.NewPlatform()
	if err := p.RegisterUser(user); err != nil {
		return nil, err
	}
	if err := dataset.RegisterDangerQuery(p); err != nil {
		return nil, err
	}

	if scale > 0 {
		cfg := dataset.DefaultConfig()
		cfg.Landfills = scale
		if err := dataset.Populate(db, cfg); err != nil {
			return nil, err
		}
		if _, err := dataset.PopulateOntology(p, user, dataset.DefaultOntology()); err != nil {
			return nil, err
		}
	} else {
		if _, err := db.ExecScript(`
			CREATE TABLE landfill (name TEXT PRIMARY KEY, city TEXT);
			CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT);
			INSERT INTO landfill VALUES ('a', 'Torino'), ('b', 'Milano'), ('c', 'Lyon');
			INSERT INTO elem_contained VALUES
				('Mercury', 'a'), ('Lead', 'a'), ('Zinc', 'a'),
				('Gold', 'b'), ('Mercury', 'b'), ('Lead', 'c');
		`); err != nil {
			return nil, err
		}
		smg := func(l string) rdf.Term { return rdf.NewIRI(core.DefaultIRIPrefix + l) }
		for _, t := range []rdf.Triple{
			{S: smg("Mercury"), P: smg("dangerLevel"), O: rdf.NewLiteral("high")},
			{S: smg("Lead"), P: smg("dangerLevel"), O: rdf.NewLiteral("high")},
			{S: smg("Zinc"), P: smg("dangerLevel"), O: rdf.NewLiteral("low")},
			{S: smg("Mercury"), P: smg("isA"), O: smg("HazardousWaste")},
			{S: smg("Lead"), P: smg("isA"), O: smg("HazardousWaste")},
			{S: smg("Torino"), P: smg("inCountry"), O: smg("Italy")},
			{S: smg("Milano"), P: smg("inCountry"), O: smg("Italy")},
			{S: smg("Lyon"), P: smg("inCountry"), O: smg("France")},
		} {
			if _, err := p.Insert(user, t); err != nil {
				return nil, err
			}
		}
	}
	enr := core.New(db, p, nil)
	p.SetConceptChecker(core.NewConceptChecker(db, enr.Mapping))
	return enr, nil
}

func runQuery(enr *core.Enricher, user, q string, withStats bool) error {
	res, stats, err := enr.QueryStats(user, q)
	if err != nil {
		return err
	}
	fmt.Print(engine.FormatTable(res))
	if withStats {
		fmt.Printf("parse %v | base SQL %v | SPARQL %v | join %v | final SQL %v | total %v\n",
			stats.Parse, stats.BaseSQL, stats.SPARQL, stats.Join, stats.FinalSQL, stats.Total())
		for _, sq := range stats.SPARQLQueries {
			fmt.Println("  sparql:", sq)
		}
		if stats.FinalSQLText != "" {
			fmt.Println("  final :", stats.FinalSQLText)
		}
	}
	return nil
}

func repl(enr *core.Enricher, user string) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	showStats := false
	var pending strings.Builder

	prompt := func() {
		if pending.Len() == 0 {
			fmt.Printf("%s> ", user)
		} else {
			fmt.Print("... ")
		}
	}

	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)

		if pending.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if quit := metaCommand(enr, &user, &showStats, trimmed); quit {
				return
			}
			prompt()
			continue
		}

		pending.WriteString(line)
		pending.WriteByte('\n')
		// A query is submitted by a ';' terminator or an ENRICH clause
		// followed by a blank line.
		full := strings.TrimSpace(pending.String())
		submit := strings.HasSuffix(trimmed, ";") || (trimmed == "" && full != "")
		if submit && full != "" {
			q := strings.TrimSuffix(full, ";")
			if err := runQuery(enr, user, q, showStats); err != nil {
				fmt.Println("error:", err)
			}
			pending.Reset()
		}
		prompt()
	}
}

func metaCommand(enr *core.Enricher, user *string, showStats *bool, cmd string) (quit bool) {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\quit", "\\q":
		return true
	case "\\help":
		fmt.Println(`\tables  \user NAME  \kb  \tag S P O  \import USER  \stats
\dot FILE  \savekb FILE  \loadkb FILE  \dump FILE  \quit`)
	case "\\tables":
		for _, n := range enr.DB.Catalog().Names() {
			rel, err := enr.DB.Catalog().Resolve(n)
			if err == nil {
				fmt.Printf("%s(%s)\n", n, strings.Join(rel.Schema().Names(), ", "))
			}
		}
	case "\\user":
		if len(fields) != 2 {
			fmt.Println("usage: \\user NAME")
			break
		}
		name := fields[1]
		if err := enr.Platform.RegisterUser(name); err != nil && !strings.Contains(err.Error(), "already") {
			fmt.Println("error:", err)
			break
		}
		*user = name
		fmt.Println("now querying as", name)
	case "\\kb":
		view, err := enr.Platform.View(*user)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		n := 0
		view.ForEach(rdf.Pattern{}, func(t rdf.Triple) bool {
			fmt.Println(" ", t)
			n++
			return n < 50
		})
		fmt.Printf("(%d shown)\n", n)
	case "\\tag":
		if len(fields) != 4 {
			fmt.Println("usage: \\tag SUBJECT PROPERTY OBJECT")
			break
		}
		m := enr.Mapping
		t := rdf.Triple{S: m.PropertyIRI(fields[1]), P: m.PropertyIRI(fields[2]), O: m.PropertyIRI(fields[3])}
		id, err := enr.Platform.Insert(*user, t)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println("inserted", id)
	case "\\import":
		if len(fields) != 2 {
			fmt.Println("usage: \\import USER")
			break
		}
		n, err := enr.Platform.ImportFrom(*user, fields[1], nil)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Printf("imported %d statement(s)\n", n)
	case "\\stats":
		*showStats = !*showStats
		fmt.Println("stats:", *showStats)
	case "\\dot":
		if len(fields) != 2 {
			fmt.Println("usage: \\dot FILE — write the current user's KB as Graphviz DOT")
			break
		}
		view, err := enr.Platform.View(*user)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		if err := writeFile(fields[1], func(w *os.File) error {
			return kb.WriteDOT(w, view, *user+"-kb")
		}); err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println("wrote", fields[1])
	case "\\savekb":
		if len(fields) != 2 {
			fmt.Println("usage: \\savekb FILE — persist the semantic platform (reified RDF)")
			break
		}
		if err := writeFile(fields[1], enr.Platform.Save); err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println("wrote", fields[1])
	case "\\loadkb":
		if len(fields) != 2 {
			fmt.Println("usage: \\loadkb FILE — replace the semantic platform from a save file")
			break
		}
		f, err := os.Open(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		p, err := kb.Load(f)
		f.Close()
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		enr.Platform = p
		fmt.Printf("loaded %d user(s); switch with \\user\n", len(p.Users()))
	case "\\dump":
		if len(fields) != 2 {
			fmt.Println("usage: \\dump FILE — write the databank as a SQL script")
			break
		}
		if err := writeFile(fields[1], enr.DB.Dump); err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println("wrote", fields[1])
	default:
		fmt.Println("unknown meta-command; \\help lists them")
	}
	return false
}

// writeFile opens path for writing and runs fn over it.
func writeFile[F func(*os.File) error | func(io.Writer) error](path string, fn F) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch g := any(fn).(type) {
	case func(*os.File) error:
		return g(f)
	case func(io.Writer) error:
		return g(f)
	default:
		return fmt.Errorf("unsupported writer function")
	}
}
