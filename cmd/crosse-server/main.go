// Command crosse-server runs the CroSSE platform as an HTTP service: the
// main platform (relational databank), the semantic platform (per-user
// knowledge bases) and the REST integration between them — the deployment
// shape of Fig. 1/Fig. 2.
//
// Usage:
//
//	crosse-server                        # sample data on :8080
//	crosse-server -addr :9090 -scale 500 # synthetic databank, custom port
//	crosse-server -attach host:port      # also attach a remote FDW node
//	crosse-server -mapping map.xml       # custom resource mapping
//	crosse-server -snapshot platform.img # durable image: load on boot,
//	                                     # save on SIGINT/SIGTERM
//	crosse-server -snapshot platform.img -snapshot-interval 5m
//
// With -snapshot, boot restores the platform image when the file exists
// (bulk ID-level load — no re-import of the corpus) and falls back to
// synthesising the sample databank when it does not. The image is written
// atomically on shutdown signals, every -snapshot-interval when set, and on
// demand via POST /api/admin/snapshot.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crosse/internal/core"
	"crosse/internal/dataset"
	"crosse/internal/engine"
	"crosse/internal/fdw"
	"crosse/internal/kb"
	"crosse/internal/rest"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "HTTP listen address")
		scale         = flag.Int("scale", 200, "synthetic databank size (landfills)")
		attach        = flag.String("attach", "", "FDW server address to attach as foreign tables")
		mapping       = flag.String("mapping", "", "resource mapping XML file")
		snapshot      = flag.String("snapshot", "", "platform image file: loaded on boot when present, saved on SIGINT/SIGTERM")
		snapshotEvery = flag.Duration("snapshot-interval", 0, "also save the platform image periodically (0 disables; requires -snapshot)")
	)
	flag.Parse()

	var (
		db       *engine.DB
		platform *kb.Platform
		restored bool
	)
	if *snapshot != "" {
		if _, err := os.Stat(*snapshot); err == nil {
			start := time.Now()
			var err error
			db, platform, err = core.LoadImageFile(*snapshot)
			if err != nil {
				log.Fatalf("restore snapshot %s: %v", *snapshot, err)
			}
			restored = true
			log.Printf("restored platform image %s in %v (%d users, %d triples)",
				*snapshot, time.Since(start).Round(time.Millisecond),
				len(platform.Users()), platform.Shared().Len())
		} else if !os.IsNotExist(err) {
			log.Fatalf("stat snapshot %s: %v", *snapshot, err)
		}
	}
	if db == nil {
		db = engine.Open()
		cfg := dataset.DefaultConfig()
		cfg.Landfills = *scale
		if err := dataset.Populate(db, cfg); err != nil {
			log.Fatalf("populate databank: %v", err)
		}
		platform = kb.NewPlatform()
		if err := dataset.RegisterDangerQuery(platform); err != nil {
			log.Fatalf("register dangerQuery: %v", err)
		}
	}

	var m *core.Mapping
	if *mapping != "" {
		f, err := os.Open(*mapping)
		if err != nil {
			log.Fatalf("open mapping: %v", err)
		}
		m, err = core.LoadMapping(f)
		f.Close()
		if err != nil {
			log.Fatalf("parse mapping: %v", err)
		}
	}

	enricher := core.New(db, platform, m)
	enricher.Activity = core.NewActivity() // feeds /api/peers?by=activity
	platform.SetConceptChecker(core.NewConceptChecker(db, enricher.Mapping))

	if *attach != "" {
		client, err := fdw.Dial(*attach)
		if err != nil {
			log.Fatalf("attach %s: %v", *attach, err)
		}
		n, err := client.Attach(db.Catalog(), "remote_")
		if err != nil {
			log.Fatalf("import foreign schema: %v", err)
		}
		log.Printf("attached %d foreign table(s) from %s (prefix remote_)", n, *attach)
	}

	save := func(reason string) {
		if *snapshot == "" {
			return
		}
		start := time.Now()
		size, err := core.SaveImageFile(*snapshot, db, platform)
		if err != nil {
			log.Printf("snapshot save (%s) failed: %v", reason, err)
			return
		}
		log.Printf("saved platform image %s (%d bytes, %v, %s)",
			*snapshot, size, time.Since(start).Round(time.Millisecond), reason)
	}

	if *snapshot != "" {
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		go func() {
			sig := <-sigs
			save(sig.String())
			os.Exit(0)
		}()
		if *snapshotEvery > 0 {
			go func() {
				for range time.Tick(*snapshotEvery) {
					save("interval")
				}
			}()
		}
	} else if *snapshotEvery > 0 {
		log.Fatalf("-snapshot-interval requires -snapshot")
	}

	srv := rest.NewServer(enricher)
	srv.SetSnapshotPath(*snapshot)
	if restored {
		log.Printf("CroSSE platform on %s (databank: %d tables, restored)", *addr, len(db.Catalog().Names()))
	} else {
		log.Printf("CroSSE platform on %s (databank: %d landfills)", *addr, *scale)
	}
	fmt.Println("try: curl -s localhost" + *addr + "/api/tables")
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
