// Command crosse-server runs the CroSSE platform as an HTTP service: the
// main platform (relational databank), the semantic platform (per-user
// knowledge bases) and the REST integration between them — the deployment
// shape of Fig. 1/Fig. 2.
//
// Usage:
//
//	crosse-server                        # sample data on :8080
//	crosse-server -addr :9090 -scale 500 # synthetic databank, custom port
//	crosse-server -attach host:port      # also attach a remote FDW node
//	crosse-server -mapping map.xml       # custom resource mapping
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"crosse/internal/core"
	"crosse/internal/dataset"
	"crosse/internal/engine"
	"crosse/internal/fdw"
	"crosse/internal/kb"
	"crosse/internal/rest"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "HTTP listen address")
		scale   = flag.Int("scale", 200, "synthetic databank size (landfills)")
		attach  = flag.String("attach", "", "FDW server address to attach as foreign tables")
		mapping = flag.String("mapping", "", "resource mapping XML file")
	)
	flag.Parse()

	db := engine.Open()
	cfg := dataset.DefaultConfig()
	cfg.Landfills = *scale
	if err := dataset.Populate(db, cfg); err != nil {
		log.Fatalf("populate databank: %v", err)
	}

	platform := kb.NewPlatform()
	if err := dataset.RegisterDangerQuery(platform); err != nil {
		log.Fatalf("register dangerQuery: %v", err)
	}

	var m *core.Mapping
	if *mapping != "" {
		f, err := os.Open(*mapping)
		if err != nil {
			log.Fatalf("open mapping: %v", err)
		}
		m, err = core.LoadMapping(f)
		f.Close()
		if err != nil {
			log.Fatalf("parse mapping: %v", err)
		}
	}

	enricher := core.New(db, platform, m)
	enricher.Activity = core.NewActivity() // feeds /api/peers?by=activity
	platform.SetConceptChecker(core.NewConceptChecker(db, enricher.Mapping))

	if *attach != "" {
		client, err := fdw.Dial(*attach)
		if err != nil {
			log.Fatalf("attach %s: %v", *attach, err)
		}
		n, err := client.Attach(db.Catalog(), "remote_")
		if err != nil {
			log.Fatalf("import foreign schema: %v", err)
		}
		log.Printf("attached %d foreign table(s) from %s (prefix remote_)", n, *attach)
	}

	srv := rest.NewServer(enricher)
	log.Printf("CroSSE platform on %s (databank: %d landfills)", *addr, *scale)
	fmt.Println("try: curl -s localhost" + *addr + "/api/tables")
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
