// Command crosse-server runs the CroSSE platform as an HTTP service: the
// main platform (relational databank), the semantic platform (per-user
// knowledge bases) and the REST integration between them — the deployment
// shape of Fig. 1/Fig. 2.
//
// Usage:
//
//	crosse-server                        # sample data on :8080
//	crosse-server -addr :9090 -scale 500 # synthetic databank, custom port
//	crosse-server -attach host:port      # also attach a remote FDW node
//	crosse-server -attach host:port -partial-results -source-timeout 5s
//	crosse-server -mapping map.xml       # custom resource mapping
//	crosse-server -snapshot platform.img # durable image: load on boot,
//	                                     # save on SIGINT/SIGTERM
//	crosse-server -snapshot platform.img -snapshot-interval 5m
//	crosse-server -wal state/            # write-ahead-logged platform
//	crosse-server -wal state/ -wal-sync always -compact-interval 10m
//	crosse-server -max-inflight 32 -inflight-queue 64  # admission control
//	crosse-server -cache-entries 0       # disable the enriched-result cache
//
// The public API is versioned under /api/v1/...; unversioned /api/...
// paths are deprecated aliases kept for one release. The serving tier in
// front of the handlers — an epoch-keyed enriched-result cache, per-
// endpoint request metrics (GET /api/v1/metrics) and admission control on
// the query endpoints — is configured by the -cache-* and -*inflight*
// flags above. See docs/API.md.
//
// With -snapshot, boot restores the platform image when the file exists
// (bulk ID-level load — no re-import of the corpus) and falls back to
// synthesising the sample databank when it does not. The image is written
// atomically on shutdown signals, every -snapshot-interval when set, and on
// demand via POST /api/admin/snapshot.
//
// With -wal, the platform journals every mutation to an append-only log
// before acknowledging it (group-committed under -wal-sync), recovery on
// boot is image + log replay, and compaction (periodic via
// -compact-interval, on demand via POST /api/admin/compact, and once at
// shutdown) re-anchors the image and empties the log. -wal and -snapshot
// are mutually exclusive: the journal owns its own image.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"crosse/internal/core"
	"crosse/internal/dataset"
	"crosse/internal/engine"
	"crosse/internal/fdw"
	"crosse/internal/kb"
	"crosse/internal/rest"
	"crosse/internal/serve"
	"crosse/internal/wal"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "HTTP listen address")
		scale         = flag.Int("scale", 200, "synthetic databank size (landfills)")
		attach        = flag.String("attach", "", "FDW server address to attach as foreign tables")
		mapping       = flag.String("mapping", "", "resource mapping XML file")
		snapshot      = flag.String("snapshot", "", "platform image file: loaded on boot when present, saved on SIGINT/SIGTERM")
		snapshotEvery = flag.Duration("snapshot-interval", 0, "also save the platform image periodically (0 disables; requires -snapshot)")
		walDir        = flag.String("wal", "", "journal directory: write-ahead-log every mutation, recover via image + replay on boot")
		walSync       = flag.String("wal-sync", "interval", "WAL durability policy: always (fsync per ack, group-committed), interval, never")
		walSyncEvery  = flag.Duration("wal-sync-interval", 100*time.Millisecond, "fsync cadence under -wal-sync interval")
		compactEvery  = flag.Duration("compact-interval", 0, "rewrite image + truncate log periodically (0 disables; requires -wal)")
		partial       = flag.Bool("partial-results", false, "degrade gracefully when a remote source is down: skip it (reported in query stats) instead of failing the query")
		sourceTimeout = flag.Duration("source-timeout", 30*time.Second, "per-request deadline for remote FDW sources")
		healthEvery   = flag.Duration("health-interval", 2*time.Second, "remote-source health poll cadence (0 disables polling)")
		cacheEntries  = flag.Int("cache-entries", 4096, "enriched-result cache entry bound (0 disables result caching)")
		cacheBytes    = flag.Int64("cache-bytes", 64<<20, "enriched-result cache byte budget")
		maxInflight   = flag.Int("max-inflight", 0, "maximum concurrently executing queries (0 = unlimited)")
		inflightQueue = flag.Int("inflight-queue", 32, "queries allowed to wait for an execution slot before a 429 (requires -max-inflight)")
	)
	flag.Parse()

	if *walDir != "" && *snapshot != "" {
		log.Fatalf("-wal and -snapshot are mutually exclusive (the journal keeps its own image under -wal)")
	}
	if *compactEvery > 0 && *walDir == "" {
		log.Fatalf("-compact-interval requires -wal")
	}
	if *snapshotEvery > 0 && *snapshot == "" {
		log.Fatalf("-snapshot-interval requires -snapshot")
	}

	bootstrap := func() (*engine.DB, *kb.Platform, error) {
		db := engine.Open()
		cfg := dataset.DefaultConfig()
		cfg.Landfills = *scale
		if err := dataset.Populate(db, cfg); err != nil {
			return nil, nil, fmt.Errorf("populate databank: %w", err)
		}
		p := kb.NewPlatform()
		if err := dataset.RegisterDangerQuery(p); err != nil {
			return nil, nil, fmt.Errorf("register dangerQuery: %w", err)
		}
		return db, p, nil
	}

	var (
		db       *engine.DB
		platform *kb.Platform
		journal  *core.Journal
		restored bool
	)
	switch {
	case *walDir != "":
		policy, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.MkdirAll(*walDir, 0o755); err != nil {
			log.Fatalf("create journal directory: %v", err)
		}
		start := time.Now()
		journal, restored, err = core.OpenJournal(*walDir, core.JournalOptions{
			Sync: policy, SyncEvery: *walSyncEvery, Logf: log.Printf,
		}, bootstrap)
		if err != nil {
			log.Fatalf("open journal %s: %v", *walDir, err)
		}
		db, platform = journal.DB(), journal.Platform()
		st := journal.Status()
		if restored {
			log.Printf("recovered journal %s in %v (image LSN %d, replayed %d record(s), %d users, %d triples)",
				*walDir, time.Since(start).Round(time.Millisecond),
				st.Start, st.LSN-st.Start, len(platform.Users()), platform.Shared().Len())
		} else {
			log.Printf("initialised journal %s (sync policy %s)", *walDir, st.Policy)
		}

	case *snapshot != "":
		if _, err := os.Stat(*snapshot); err == nil {
			start := time.Now()
			var err error
			db, platform, err = core.LoadImageFile(*snapshot)
			if err != nil {
				log.Fatalf("restore snapshot %s: %v", *snapshot, err)
			}
			restored = true
			log.Printf("restored platform image %s in %v (%d users, %d triples)",
				*snapshot, time.Since(start).Round(time.Millisecond),
				len(platform.Users()), platform.Shared().Len())
		} else if !os.IsNotExist(err) {
			log.Fatalf("stat snapshot %s: %v", *snapshot, err)
		}
	}
	if db == nil {
		var err error
		db, platform, err = bootstrap()
		if err != nil {
			log.Fatal(err)
		}
	}

	var m *core.Mapping
	if *mapping != "" {
		f, err := os.Open(*mapping)
		if err != nil {
			log.Fatalf("open mapping: %v", err)
		}
		m, err = core.LoadMapping(f)
		f.Close()
		if err != nil {
			log.Fatalf("parse mapping: %v", err)
		}
	}

	enricher := core.New(db, platform, m)
	enricher.Activity = core.NewActivity() // feeds /api/peers?by=activity
	platform.SetConceptChecker(core.NewConceptChecker(db, enricher.Mapping))

	enricher.SetPartialResults(*partial)

	var health *fdw.Health
	if *attach != "" {
		client, err := fdw.DialConfig(*attach, fdw.Config{Name: *attach, RequestTimeout: *sourceTimeout})
		if err != nil {
			log.Fatalf("attach %s: %v", *attach, err)
		}
		n, err := client.Attach(db.Catalog(), "remote_")
		if err != nil {
			log.Fatalf("import foreign schema: %v", err)
		}
		log.Printf("attached %d foreign table(s) from %s (prefix remote_)", n, *attach)
		health = fdw.NewHealth()
		health.Register(client)
		if *healthEvery > 0 {
			go health.Poll(context.Background(), *healthEvery)
		}
	}

	// save persists the durable state for the configured mode and reports
	// whether it succeeded: image save under -snapshot, compact + close
	// under -wal. A failed save on a shutdown signal must surface as a
	// non-zero exit — the operator believes the state is on disk.
	save := func(reason string) bool {
		switch {
		case journal != nil:
			start := time.Now()
			st, err := journal.Compact()
			if err != nil {
				log.Printf("journal compaction (%s) failed: %v", reason, err)
				return false
			}
			log.Printf("compacted journal at LSN %d (%v, %s)", st.Start, time.Since(start).Round(time.Millisecond), reason)
			return true
		case *snapshot != "":
			start := time.Now()
			size, err := core.SaveImageFile(*snapshot, db, platform)
			if err != nil {
				log.Printf("snapshot save (%s) failed: %v", reason, err)
				return false
			}
			log.Printf("saved platform image %s (%d bytes, %v, %s)",
				*snapshot, size, time.Since(start).Round(time.Millisecond), reason)
			return true
		}
		return true
	}

	if *snapshotEvery > 0 {
		go func() {
			for range time.Tick(*snapshotEvery) {
				save("interval")
			}
		}()
	}
	if *compactEvery > 0 {
		go func() {
			for range time.Tick(*compactEvery) {
				save("interval")
			}
		}()
	}

	srv := rest.NewServer(enricher)
	if *cacheEntries > 0 {
		srv.SetResultCache(serve.NewCache(*cacheEntries, *cacheBytes))
	}
	if *maxInflight > 0 {
		srv.SetAdmission(serve.NewLimiter(*maxInflight, *inflightQueue))
		log.Printf("admission control: %d in flight, %d queued", *maxInflight, *inflightQueue)
	}
	srv.SetSnapshotPath(*snapshot)
	if journal != nil {
		srv.SetJournal(journal)
	}
	if health != nil {
		srv.SetHealth(health)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Buffered for two signals: the first drains in-flight requests and
	// triggers the final save, the second (operator impatience or a
	// supervisor escalating) forces immediate exit instead of hanging in a
	// slow drain or save.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		go func() {
			second := <-sigs
			log.Printf("second signal (%s) during shutdown: forcing immediate exit", second)
			os.Exit(130)
		}()
		// Stop accepting connections and drain in-flight requests before
		// the final save, so a mutation acknowledged just before the
		// signal lands in the saved state; a stuck handler forfeits the
		// drain after the timeout rather than blocking the save forever.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("HTTP drain (%s) incomplete: %v", sig, err)
		}
		cancel()
		ok := save(sig.String())
		if journal != nil {
			if err := journal.Close(); err != nil {
				log.Printf("close journal: %v", err)
				ok = false
			}
		}
		if !ok {
			log.Printf("shutdown (%s) with FAILED save: durable state is stale", sig)
			os.Exit(1)
		}
		os.Exit(0)
	}()

	if restored {
		log.Printf("CroSSE platform on %s (databank: %d tables, restored)", *addr, len(db.Catalog().Names()))
	} else {
		log.Printf("CroSSE platform on %s (databank: %d landfills)", *addr, *scale)
	}
	hint := *addr
	if strings.HasPrefix(hint, ":") {
		hint = "localhost" + hint
	}
	fmt.Println("try: curl -s " + hint + "/api/tables")
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// Shutdown in progress: the signal handler finishes the save and exits
	// the process.
	select {}
}
