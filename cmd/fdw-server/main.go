// Command fdw-server runs a standalone remote data node: a synthetic
// national landfill registry exposed over the FDW wire protocol, playing
// the role of the external databanks the SmartGround platform federates
// (the paper's postgres_fdw data sources).
//
// Usage:
//
//	fdw-server                      # :7070, default registry size
//	fdw-server -addr :7171 -scale 1000 -seed 7
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"crosse/internal/dataset"
	"crosse/internal/engine"
	"crosse/internal/fdw"
)

func main() {
	var (
		addr  = flag.String("addr", ":7070", "listen address")
		scale = flag.Int("scale", 500, "registry size (landfills)")
		seed  = flag.Int64("seed", 99, "generator seed")
	)
	flag.Parse()

	db := engine.Open()
	cfg := dataset.DefaultConfig()
	cfg.Landfills = *scale
	cfg.Seed = *seed
	if err := dataset.Populate(db, cfg); err != nil {
		log.Fatalf("populate registry: %v", err)
	}

	srv := fdw.NewServer(db.Catalog())
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("FDW data node on %s exposing %v", bound, db.Catalog().Names())
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	sig := <-sigs
	log.Printf("shutting down (%s)", sig)
	srv.Close() // stop the listener, drop open connections
}
