// Command crosse-experiments runs the measurement study of EXPERIMENTS.md:
// the functional reproduction of the paper's worked examples plus the
// performance experiments E2-E10.
//
// Usage:
//
//	crosse-experiments             # run everything, full parameter sweeps
//	crosse-experiments -quick      # shrunken sweeps (seconds, not minutes)
//	crosse-experiments -exp E4,E5  # run a subset
//	crosse-experiments -list       # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"crosse/internal/experiments"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "shrink parameter sweeps")
		exp   = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	if *exp == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Find(strings.ToUpper(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		if err := e.Run(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}
