// Command walcheck proves crash recovery across real processes: serve mode
// opens a journal (image + write-ahead log), applies a deterministic
// mutation workload, and records the index of every acknowledged operation
// in an acked file; CI kills the process with SIGKILL mid-workload, and
// verify mode recovers the journal in a fresh process, checks that no
// acknowledged operation was lost, rebuilds a reference platform by
// re-running the workload prefix the log proves durable, and diffs
// SQL/SPARQL/pattern-count probes between the two. Because every workload
// operation appends exactly one log record, the recovered LSN IS the
// count of operations recovered, which makes the reference reproducible.
//
// Usage:
//
//	walcheck -mode serve  -dir state -ops 3000 -throttle 200us
//	kill -9 <pid>
//	walcheck -mode verify -dir state
//	walcheck -mode serve  -dir state -ops 3000   # run to completion
//	walcheck -mode verify -dir state -expect-ops 3000
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"sort"
	"time"

	"crosse/internal/core"
	"crosse/internal/engine"
	"crosse/internal/kb"
	"crosse/internal/rdf"
	"crosse/internal/sparql"
	"crosse/internal/sqlexec"
	"crosse/internal/wal"
)

var users = []string{"uma", "vic", "wes"}

// bootstrap is the platform state at LSN 0, captured in the journal's
// first image: the registered users and the relational table the SQL
// workload writes into. Everything after it comes from the log.
func bootstrap() (*engine.DB, *kb.Platform, error) {
	db := engine.Open()
	if _, err := db.Exec("CREATE TABLE walcheck_events (id INT PRIMARY KEY, tag TEXT)"); err != nil {
		return nil, nil, err
	}
	p := kb.NewPlatform()
	for _, u := range users {
		if err := p.RegisterUser(u); err != nil {
			return nil, nil, err
		}
	}
	return db, p, nil
}

func iri(local string) rdf.Term { return rdf.NewIRI("http://walcheck.example/" + local) }

// genState is the workload generator's own state: the ids of statements
// inserted and not yet retracted. Its transitions depend only on the
// operation index, so re-running the generator for 1..m reproduces the
// state the crashed process had after acknowledging operation m.
type genState struct {
	live   []string
	nextID int // platform statement counter mirror: ids are "stmt-N"
}

// apply runs operation i (1-based) against a mutation surface. Every
// branch issues exactly one logged mutation.
func (g *genState) apply(i int, m core.Mutator, exec func(string) (*sqlexec.Result, error)) error {
	user := users[i%len(users)]
	switch i % 7 {
	case 0:
		_, err := exec(fmt.Sprintf("INSERT INTO walcheck_events VALUES (%d, 'evt-%d')", i, i))
		return err
	case 1, 2, 5:
		t := rdf.Triple{S: iri(fmt.Sprintf("thing-%d", i%97)), P: iri(fmt.Sprintf("rel-%d", i%13)), O: rdf.NewLiteral(fmt.Sprintf("v%d", i))}
		var opts []kb.InsertOption
		if i%4 == 1 {
			opts = append(opts, kb.WithReference(kb.Reference{Title: fmt.Sprintf("ref-%d", i), Author: user}))
		}
		id, err := m.Insert(user, t, opts...)
		if err != nil {
			return err
		}
		g.nextID++
		if want := fmt.Sprintf("stmt-%d", g.nextID); id != want {
			return fmt.Errorf("walcheck: op %d produced id %s, generator expected %s", i, id, want)
		}
		g.live = append(g.live, id)
		return nil
	case 3:
		if len(g.live) == 0 {
			return m.RegisterQuery(user, fmt.Sprintf("q-%d", i),
				fmt.Sprintf("SELECT ?s WHERE { ?s <http://walcheck.example/rel-%d> ?o }", i%13))
		}
		// A different user than the inserter rotation imports a believed-or-
		// not statement; importing one you already believe still logs one
		// record, so the one-record-per-op invariant holds either way.
		return m.Import(users[(i+1)%len(users)], g.live[i%len(g.live)])
	case 4:
		return m.DeclareProperty(user, iri(fmt.Sprintf("rel-%d", i%13)).Value)
	default: // 6
		if len(g.live) == 0 {
			return m.DeclareResource(user, iri(fmt.Sprintf("thing-%d", i%97)).Value)
		}
		// Owner retract: statement ids are "stmt-N" with N from the platform
		// counter, owners rotate with the insertion index, so the owner of
		// g.live[0] is recoverable only through the platform — ask it.
		id := g.live[0]
		g.live = g.live[1:]
		st, err := owner(m, id)
		if err != nil {
			return err
		}
		return m.Retract(st, id)
	}
}

// skip advances the generator past operation i without touching any
// platform: the dry-run used to fast-forward to the recovered prefix.
func (g *genState) skip(i int) {
	switch i % 7 {
	case 1, 2, 5:
		g.nextID++
		g.live = append(g.live, fmt.Sprintf("stmt-%d", g.nextID))
	case 6:
		if len(g.live) > 0 {
			g.live = g.live[1:]
		}
	}
}

// owner resolves a statement's owner through whichever platform backs the
// mutator (journal or bare).
func owner(m core.Mutator, id string) (string, error) {
	var p *kb.Platform
	switch v := m.(type) {
	case *core.Journal:
		p = v.Platform()
	case *kb.Platform:
		p = v
	default:
		return "", fmt.Errorf("walcheck: unknown mutator %T", m)
	}
	st, err := p.Statement(id)
	if err != nil {
		return "", err
	}
	return st.Owner, nil
}

// probeResults pins everything verify compares between the recovered
// platform and the reference rebuilt from the acknowledged prefix.
type probeResults struct {
	Users      []string
	ArenaLen   int
	DictLen    int
	ViewSizes  map[string]int
	Statements []string
	Events     []string
	SPARQL     map[string][]string
	Counts     map[string][]int
}

func probe(db *engine.DB, p *kb.Platform) (*probeResults, error) {
	res := &probeResults{
		Users:     p.Users(),
		ArenaLen:  p.Shared().Len(),
		DictLen:   p.Shared().DictLen(),
		ViewSizes: map[string]int{},
		SPARQL:    map[string][]string{},
		Counts:    map[string][]int{},
	}
	for _, st := range p.Explore(nil) {
		res.Statements = append(res.Statements,
			fmt.Sprintf("%s|%s|%s|%v", st.ID, st.Owner, st.Triple, st.Believers()))
	}
	r, err := db.Query("SELECT id, tag FROM walcheck_events")
	if err != nil {
		return nil, fmt.Errorf("walcheck: events probe: %w", err)
	}
	for _, row := range r.Rows {
		res.Events = append(res.Events, row[0].String()+"|"+row[1].String())
	}
	sort.Strings(res.Events)
	for _, u := range p.Users() {
		res.ViewSizes[u] = p.ViewSize(u)
		view, err := p.View(u)
		if err != nil {
			return nil, err
		}
		sr, err := sparql.Eval(view, `SELECT ?s ?p ?o WHERE { ?s ?p ?o } ORDER BY ?s ?p ?o`)
		if err != nil {
			return nil, fmt.Errorf("walcheck: SPARQL probe for %s: %w", u, err)
		}
		var rows []string
		for _, b := range sr.Bindings {
			rows = append(rows, fmt.Sprintf("%s|%s|%s", b["s"], b["p"], b["o"]))
		}
		res.SPARQL[u] = rows
		for _, pat := range []rdf.Pattern{
			{},
			{P: iri("rel-1")},
			{P: iri("rel-5")},
			{S: iri("thing-8")},
			{O: rdf.NewLiteral("v15")},
		} {
			res.Counts[u] = append(res.Counts[u], view.Count(pat))
		}
	}
	return res, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "walcheck:", err)
	os.Exit(1)
}

func ackedPath(dir string) string { return dir + "/acked" }

// writeAcked records that operation i was acknowledged. Fixed-width
// in-place write: a SIGKILL between operations can never leave a torn
// counter, and the OS page cache preserves it across the kill (this file
// tracks acknowledgement for the verifier, not durability — the WAL owns
// durability).
func writeAcked(f *os.File, i int) error {
	_, err := f.WriteAt([]byte(fmt.Sprintf("%019d\n", i)), 0)
	return err
}

func readAcked(dir string) (int, error) {
	raw, err := os.ReadFile(ackedPath(dir))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var k int
	if _, err := fmt.Sscanf(string(raw), "%d", &k); err != nil {
		return 0, fmt.Errorf("walcheck: unreadable acked file: %w", err)
	}
	return k, nil
}

func main() {
	var (
		mode         = flag.String("mode", "", "serve | verify")
		dir          = flag.String("dir", "walcheck-state", "journal directory")
		ops          = flag.Int("ops", 3000, "workload length (serve)")
		syncPolicy   = flag.String("sync", "interval", "WAL sync policy: always | interval | never")
		throttle     = flag.Duration("throttle", 0, "pause between operations (serve), so kills land mid-stream")
		compactEvery = flag.Int("compact-every", 0, "compact the journal every N operations (serve, 0 disables)")
		expectOps    = flag.Int("expect-ops", -1, "verify: require exactly this many operations recovered")
	)
	flag.Parse()

	switch *mode {
	case "serve":
		policy, err := wal.ParseSyncPolicy(*syncPolicy)
		if err != nil {
			fatal(err)
		}
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fatal(err)
		}
		j, restored, err := core.OpenJournal(*dir, core.JournalOptions{Sync: policy}, bootstrap)
		if err != nil {
			fatal(err)
		}
		m := int(j.Status().LSN)
		if restored {
			fmt.Printf("walcheck: recovered %d operation(s) from %s\n", m, *dir)
		}
		g := &genState{}
		for i := 1; i <= m; i++ {
			g.skip(i)
		}
		acked, err := os.OpenFile(ackedPath(*dir), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			fatal(err)
		}
		for i := m + 1; i <= *ops; i++ {
			if err := g.apply(i, j, j.Exec); err != nil {
				fatal(fmt.Errorf("op %d: %w", i, err))
			}
			if err := writeAcked(acked, i); err != nil {
				fatal(err)
			}
			if *compactEvery > 0 && i%*compactEvery == 0 {
				if _, err := j.Compact(); err != nil {
					fatal(fmt.Errorf("compact at op %d: %w", i, err))
				}
			}
			if *throttle > 0 {
				time.Sleep(*throttle)
			}
		}
		if err := j.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("walcheck: served %d operation(s) into %s (sync=%s)\n", *ops-m, *dir, policy)

	case "verify":
		if _, err := os.Stat(core.ImagePath(*dir)); os.IsNotExist(err) {
			if _, aerr := os.Stat(ackedPath(*dir)); aerr == nil {
				fatal(fmt.Errorf("operations were acknowledged but image %s is gone", core.ImagePath(*dir)))
			}
			fmt.Println("walcheck: nothing to verify (no journal state)")
			return
		}
		k, err := readAcked(*dir)
		if err != nil {
			fatal(err)
		}
		j, _, err := core.OpenJournal(*dir, core.JournalOptions{}, bootstrap)
		if err != nil {
			fatal(fmt.Errorf("recovery failed: %w", err))
		}
		m := int(j.Status().LSN)
		if m < k {
			fatal(fmt.Errorf("recovery lost acknowledged operations: recovered %d, acknowledged %d", m, k))
		}
		if *expectOps >= 0 && m != *expectOps {
			fatal(fmt.Errorf("recovered %d operation(s), expected exactly %d", m, *expectOps))
		}

		// Reference: a fresh platform with the same bootstrap, fed the exact
		// operation prefix the recovered journal proves durable.
		rdb, rp, err := bootstrap()
		if err != nil {
			fatal(err)
		}
		g := &genState{}
		for i := 1; i <= m; i++ {
			if err := g.apply(i, rp, rdb.ExecScript); err != nil {
				fatal(fmt.Errorf("reference op %d: %w", i, err))
			}
		}
		got, err := probe(j.DB(), j.Platform())
		if err != nil {
			fatal(err)
		}
		want, err := probe(rdb, rp)
		if err != nil {
			fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			fatal(fmt.Errorf("recovered platform diverges from the acknowledged-prefix reference at %d operation(s):\n--- reference\n%+v\n--- recovered\n%+v", m, want, got))
		}
		fmt.Printf("walcheck: recovery verified (%d operation(s), %d ≥ %d acknowledged, %d statements, %d events)\n",
			m, m, k, len(got.Statements), len(got.Events))

	default:
		fatal(fmt.Errorf("unknown -mode %q (want serve or verify)", *mode))
	}
}
