// Command benchjson converts `go test -bench` output into a machine-readable
// JSON artifact — a versioned list of (benchmark name, GOMAXPROCS, metrics)
// entries sorted by name then CPU — holding the GOMAXPROCS setting (the
// "-8" suffix go test appends to the name) and the metrics measured there
// (ns/op, B/op, allocs/op and any custom ReportMetric units), so CI can
// track both the performance trajectory across PRs and the parallel-scaling
// curve of a `-cpu 1,4,8` sweep without scraping text logs.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' . | go run ./cmd/benchjson -out BENCH.json
//
// With -guard, benchjson also enforces the parallel-scaling floor and
// exits nonzero when any matched family's highest-CPU ns/op exceeds its
// single-core ns/op by more than -guard-ratio:
//
//	go run ./cmd/benchjson -in bench.txt -out BENCH.json \
//	  -guard 'BenchmarkSQLJoinBuildHeavy|BenchmarkSPARQLPathHead'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
)

func main() {
	in := flag.String("in", "", "benchmark output file (default stdin)")
	out := flag.String("out", "", "JSON output file (default stdout)")
	guard := flag.String("guard", "", "regexp of benchmark families whose highest-CPU ns/op must stay within -guard-ratio of their cpu=1 ns/op; exit nonzero on violation")
	guardRatio := flag.Float64("guard-ratio", 1.10, "max allowed highest-CPU/single-core ns/op ratio under -guard")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	data, err := io.ReadAll(r)
	if err != nil {
		fatal(err)
	}
	report, err := Parse(string(data))
	if err != nil {
		fatal(err)
	}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	if *guard != "" {
		pat, err := regexp.Compile(*guard)
		if err != nil {
			fatal(err)
		}
		if err := Guard(report, pat, *guardRatio); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: scaling guard passed for %q (ratio limit %.2f)\n", *guard, *guardRatio)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
