// Command benchjson converts `go test -bench` output into a machine-readable
// JSON artifact mapping benchmark name → per-CPU entries, each holding the
// GOMAXPROCS setting (the "-8" suffix go test appends to the name) and the
// metrics measured there (ns/op, B/op, allocs/op and any custom ReportMetric
// units), so CI can track both the performance trajectory across PRs and the
// parallel-scaling curve of a `-cpu 1,4,8` sweep without scraping text logs.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' . | go run ./cmd/benchjson -out BENCH.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	in := flag.String("in", "", "benchmark output file (default stdin)")
	out := flag.String("out", "", "JSON output file (default stdout)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	data, err := io.ReadAll(r)
	if err != nil {
		fatal(err)
	}
	report, err := Parse(string(data))
	if err != nil {
		fatal(err)
	}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
