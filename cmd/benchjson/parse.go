package main

import (
	"strconv"
	"strings"
)

// Metrics is one benchmark's measurements: unit → value. Units come
// straight from the benchmark line ("ns/op", "B/op", "allocs/op", plus any
// custom testing.B ReportMetric units); "iterations" records the run count.
type Metrics map[string]float64

// Report maps benchmark name (GOMAXPROCS suffix stripped, so keys are
// stable across machines) to its metrics. When the same name appears more
// than once (e.g. -count>1), each metric is the mean over the repeated
// runs, so the artifact reflects all measurements instead of whichever run
// happened to come last.
type Report map[string]Metrics

// Parse extracts benchmark results from `go test -bench` output. Non-result
// lines (pkg headers, PASS, logs) are ignored.
func Parse(out string) (Report, error) {
	sums := map[string]Metrics{}
	counts := map[string]map[string]int{}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		// A result line is: name iterations (value unit)+
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue // e.g. "BenchmarkFoo 	--- FAIL"
		}
		m := Metrics{"iterations": iters}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			m[fields[i+1]] = v
		}
		if !ok || len(m) == 1 {
			continue
		}
		name := stripProcs(fields[0])
		if sums[name] == nil {
			sums[name] = Metrics{}
			counts[name] = map[string]int{}
		}
		for unit, v := range m {
			sums[name][unit] += v
			counts[name][unit]++
		}
	}
	report := Report{}
	for name, acc := range sums {
		m := Metrics{}
		for unit, sum := range acc {
			m[unit] = sum / float64(counts[name][unit])
		}
		report[name] = m
	}
	return report, nil
}

// stripProcs removes the trailing -GOMAXPROCS suffix go test appends to
// benchmark names ("BenchmarkFoo/bar-8" → "BenchmarkFoo/bar"). Only a
// plausible processor count (1..1024) is treated as a suffix, so a
// dash-digit tail that is part of the benchmark's own name (e.g. a
// "size-100000" sub-benchmark on a GOMAXPROCS=1 runner, where go test
// appends nothing) is kept intact.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n < 1 || n > 1024 {
		return name
	}
	return name[:i]
}
