package main

import (
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's measurements: unit → value. Units come
// straight from the benchmark line ("ns/op", "B/op", "allocs/op", plus any
// custom testing.B ReportMetric units); "iterations" records the run count.
type Metrics map[string]float64

// Entry is one benchmark's measurements at one GOMAXPROCS setting. The
// processor count go test appends to the name ("-8") lands in CPU instead
// of the key, so a `-cpu 1,4,8` scaling sweep yields one entry per setting
// rather than a meaningless mean across them.
type Entry struct {
	CPU     int     `json:"cpu"`
	Metrics Metrics `json:"metrics"`
}

// Report maps benchmark name (GOMAXPROCS suffix split off into each
// entry's CPU field, so keys are stable across machines) to its per-CPU
// results, ordered by rising CPU. When the same (name, cpu) pair appears
// more than once (e.g. -count>1), each metric is the mean over the
// repeated runs, so the artifact reflects all measurements instead of
// whichever run happened to come last.
type Report map[string][]Entry

// benchKey identifies one aggregation bucket: repeated runs of a name at
// the same GOMAXPROCS average together, runs at different settings don't.
type benchKey struct {
	name string
	cpu  int
}

// Parse extracts benchmark results from `go test -bench` output. Non-result
// lines (pkg headers, PASS, logs) are ignored.
func Parse(out string) (Report, error) {
	sums := map[benchKey]Metrics{}
	counts := map[benchKey]map[string]int{}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		// A result line is: name iterations (value unit)+
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue // e.g. "BenchmarkFoo 	--- FAIL"
		}
		m := Metrics{"iterations": iters}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			m[fields[i+1]] = v
		}
		if !ok || len(m) == 1 {
			continue
		}
		name, cpu := splitProcs(fields[0])
		key := benchKey{name, cpu}
		if sums[key] == nil {
			sums[key] = Metrics{}
			counts[key] = map[string]int{}
		}
		for unit, v := range m {
			sums[key][unit] += v
			counts[key][unit]++
		}
	}
	report := Report{}
	for key, acc := range sums {
		m := Metrics{}
		for unit, sum := range acc {
			m[unit] = sum / float64(counts[key][unit])
		}
		report[key.name] = append(report[key.name], Entry{CPU: key.cpu, Metrics: m})
	}
	for name := range report {
		es := report[name]
		sort.Slice(es, func(i, j int) bool { return es[i].CPU < es[j].CPU })
	}
	return report, nil
}

// splitProcs separates the trailing -GOMAXPROCS suffix go test appends to
// benchmark names ("BenchmarkFoo/bar-8" → "BenchmarkFoo/bar", 8). Only a
// plausible processor count (1..1024) is treated as a suffix, so a
// dash-digit tail that is part of the benchmark's own name (e.g. a
// "size-100000" sub-benchmark on a GOMAXPROCS=1 runner, where go test
// appends nothing) is kept intact. Without a suffix the run was at
// GOMAXPROCS=1.
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n < 1 || n > 1024 {
		return name, 1
	}
	return name[:i], n
}
