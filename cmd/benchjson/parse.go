package main

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// SchemaVersion identifies the artifact layout so downstream tooling can
// diff BENCH.json files across PRs without sniffing their shape. Version 1
// was the unversioned benchmark-name → entry-list map; version 2 flattened
// the report into a sorted entry list under a top-level schema_version.
const SchemaVersion = 2

// Metrics is one benchmark's measurements: unit → value. Units come
// straight from the benchmark line ("ns/op", "B/op", "allocs/op", plus any
// custom testing.B ReportMetric units); "iterations" records the run count.
type Metrics map[string]float64

// Entry is one benchmark's measurements at one GOMAXPROCS setting. The
// processor count go test appends to the name ("-8") lands in CPU instead
// of the name, so a `-cpu 1,4,8` scaling sweep yields one entry per
// setting rather than a meaningless mean across them.
type Entry struct {
	Name    string  `json:"name"`
	CPU     int     `json:"cpu"`
	Metrics Metrics `json:"metrics"`
}

// Report is the artifact: the schema version plus every (name, cpu)
// bucket, sorted by name then rising CPU, so byte-identical inputs always
// produce byte-identical artifacts and scaling curves read straight off
// adjacent entries. When the same (name, cpu) pair appears more than once
// (e.g. -count>1), each metric is the mean over the repeated runs, so the
// artifact reflects all measurements instead of whichever run came last.
type Report struct {
	SchemaVersion int     `json:"schema_version"`
	Benchmarks    []Entry `json:"benchmarks"`
}

// benchKey identifies one aggregation bucket: repeated runs of a name at
// the same GOMAXPROCS average together, runs at different settings don't.
type benchKey struct {
	name string
	cpu  int
}

// Parse extracts benchmark results from `go test -bench` output. Non-result
// lines (pkg headers, PASS, logs) are ignored.
func Parse(out string) (Report, error) {
	sums := map[benchKey]Metrics{}
	counts := map[benchKey]map[string]int{}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		// A result line is: name iterations (value unit)+
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue // e.g. "BenchmarkFoo 	--- FAIL"
		}
		m := Metrics{"iterations": iters}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			m[fields[i+1]] = v
		}
		if !ok || len(m) == 1 {
			continue
		}
		name, cpu := splitProcs(fields[0])
		key := benchKey{name, cpu}
		if sums[key] == nil {
			sums[key] = Metrics{}
			counts[key] = map[string]int{}
		}
		for unit, v := range m {
			sums[key][unit] += v
			counts[key][unit]++
		}
	}
	report := Report{SchemaVersion: SchemaVersion}
	for key, acc := range sums {
		m := Metrics{}
		for unit, sum := range acc {
			m[unit] = sum / float64(counts[key][unit])
		}
		report.Benchmarks = append(report.Benchmarks, Entry{Name: key.name, CPU: key.cpu, Metrics: m})
	}
	sort.Slice(report.Benchmarks, func(i, j int) bool {
		a, b := report.Benchmarks[i], report.Benchmarks[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.CPU < b.CPU
	})
	return report, nil
}

// Guard enforces the parallel-scaling floor on a -cpu sweep: for every
// benchmark whose name matches pattern, ns/op at the highest GOMAXPROCS
// setting must not exceed maxRatio × ns/op at GOMAXPROCS=1 — a parallel
// stage may fail to speed a workload up, but it must never make it slower
// than the serial path beyond measurement jitter. A pattern that matches
// nothing, or a matched benchmark missing its single-core baseline or a
// multi-core setting, is an error too: a mis-wired sweep must fail loud,
// not pass vacuously.
func Guard(r Report, pattern *regexp.Regexp, maxRatio float64) error {
	byName := map[string][]Entry{}
	var names []string
	for _, e := range r.Benchmarks {
		if !pattern.MatchString(e.Name) {
			continue
		}
		if byName[e.Name] == nil {
			names = append(names, e.Name)
		}
		byName[e.Name] = append(byName[e.Name], e)
	}
	if len(names) == 0 {
		return fmt.Errorf("guard pattern %q matched no benchmarks", pattern)
	}
	var bad []string
	for _, n := range names {
		es := byName[n] // report order: rising CPU
		base, top := es[0], es[len(es)-1]
		if base.CPU != 1 || top.CPU == 1 {
			bad = append(bad, fmt.Sprintf("%s: need a cpu=1 baseline and a multi-core run, got cpu settings %v", n, cpus(es)))
			continue
		}
		b, t := base.Metrics["ns/op"], top.Metrics["ns/op"]
		if b <= 0 || t <= 0 {
			bad = append(bad, fmt.Sprintf("%s: missing ns/op (cpu=1: %v, cpu=%d: %v)", n, b, top.CPU, t))
			continue
		}
		if t > maxRatio*b {
			bad = append(bad, fmt.Sprintf("%s: %.0f ns/op at cpu=%d vs %.0f ns/op at cpu=1 (%.2fx, limit %.2fx)",
				n, t, top.CPU, b, t/b, maxRatio))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("parallel-scaling guard failed:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

func cpus(es []Entry) []int {
	out := make([]int, len(es))
	for i, e := range es {
		out[i] = e.CPU
	}
	return out
}

// splitProcs separates the trailing -GOMAXPROCS suffix go test appends to
// benchmark names ("BenchmarkFoo/bar-8" → "BenchmarkFoo/bar", 8). Only a
// plausible processor count (1..1024) is treated as a suffix, so a
// dash-digit tail that is part of the benchmark's own name (e.g. a
// "size-100000" sub-benchmark on a GOMAXPROCS=1 runner, where go test
// appends nothing) is kept intact. Without a suffix the run was at
// GOMAXPROCS=1.
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n < 1 || n > 1024 {
		return name, 1
	}
	return name[:i], n
}
