package main

import (
	"regexp"
	"sort"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: crosse
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBeliefImport/statements1000-8         	     100	    217979 ns/op	  225168 B/op	      59 allocs/op
BenchmarkManyUserMemory/sharedOverlays         	       1	 151487130 ns/op	90617784 B/op	  109326 allocs/op
BenchmarkConcurrentEnrich-4   	    3532	    627344 ns/op
BenchmarkCustomMetric-2    	      10	   100 ns/op	        42.5 widgets/op
BenchmarkBroken 	--- FAIL
PASS
ok  	crosse	1.234s
`

// at returns the entry for one GOMAXPROCS setting of one benchmark.
func at(t *testing.T, r Report, name string, cpu int) Metrics {
	t.Helper()
	for _, e := range r.Benchmarks {
		if e.Name == name && e.CPU == cpu {
			return e.Metrics
		}
	}
	t.Fatalf("no entry for %s cpu=%d: %v", name, cpu, r.Benchmarks)
	return nil
}

// entries returns all of one benchmark's entries, in report order.
func entries(r Report, name string) []Entry {
	var es []Entry
	for _, e := range r.Benchmarks {
		if e.Name == name {
			es = append(es, e)
		}
	}
	return es
}

func TestParse(t *testing.T) {
	r, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if r.SchemaVersion != SchemaVersion {
		t.Errorf("schema_version = %d, want %d", r.SchemaVersion, SchemaVersion)
	}
	if len(r.Benchmarks) != 4 {
		t.Fatalf("parsed %d entries, want 4: %v", len(r.Benchmarks), r.Benchmarks)
	}

	m := at(t, r, "BenchmarkBeliefImport/statements1000", 8)
	if m["ns/op"] != 217979 || m["B/op"] != 225168 || m["allocs/op"] != 59 || m["iterations"] != 100 {
		t.Errorf("BeliefImport metrics = %v", m)
	}

	// No suffix means the run was at GOMAXPROCS=1.
	if m := at(t, r, "BenchmarkManyUserMemory/sharedOverlays", 1); m["B/op"] != 90617784 {
		t.Errorf("sharedOverlays metrics = %v", m)
	}
	if m := at(t, r, "BenchmarkConcurrentEnrich", 4); m["ns/op"] != 627344 {
		t.Errorf("ConcurrentEnrich metrics = %v", m)
	}
	if m := at(t, r, "BenchmarkCustomMetric", 2); m["widgets/op"] != 42.5 {
		t.Errorf("custom metric = %v", m)
	}
	for _, e := range r.Benchmarks {
		if e.Name == "BenchmarkBroken" {
			t.Error("failed benchmark line should be skipped")
		}
	}
}

// The artifact must be deterministic: entries sorted by name, then rising
// CPU, no matter what order the runs appeared in the input.
func TestParseDeterministicOrder(t *testing.T) {
	const scrambled = `goos: linux
BenchmarkZeta-8    	      10	    100 ns/op
BenchmarkAlpha/x-4 	      10	    100 ns/op
BenchmarkAlpha/x-8 	      10	    100 ns/op
BenchmarkAlpha/x   	      10	    100 ns/op
BenchmarkMid-2     	      10	    100 ns/op
PASS
`
	r, err := Parse(scrambled)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]benchKey, len(r.Benchmarks))
	for i, e := range r.Benchmarks {
		got[i] = benchKey{e.Name, e.CPU}
	}
	want := []benchKey{
		{"BenchmarkAlpha/x", 1},
		{"BenchmarkAlpha/x", 4},
		{"BenchmarkAlpha/x", 8},
		{"BenchmarkMid", 2},
		{"BenchmarkZeta", 8},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d entries, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %v, want %v", i, got[i], want[i])
		}
	}
	if !sort.SliceIsSorted(r.Benchmarks, func(i, j int) bool {
		a, b := r.Benchmarks[i], r.Benchmarks[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.CPU < b.CPU
	}) {
		t.Errorf("report not sorted by (name, cpu): %v", got)
	}
}

// A -cpu sweep reports the same name at several GOMAXPROCS settings: each
// must become its own entry (not a mean across settings), ordered by
// rising CPU so scaling curves read straight off the artifact.
func TestParseCPUSweep(t *testing.T) {
	const sweep = `goos: linux
BenchmarkSQLJoin/Hash100k-8    	      50	   2000000 ns/op
BenchmarkSQLJoin/Hash100k-4    	      30	   3500000 ns/op
BenchmarkSQLJoin/Hash100k    	      10	  12000000 ns/op
PASS
`
	r, err := Parse(sweep)
	if err != nil {
		t.Fatal(err)
	}
	es := entries(r, "BenchmarkSQLJoin/Hash100k")
	if len(es) != 3 {
		t.Fatalf("sweep produced %d entries, want 3: %v", len(es), es)
	}
	for i, want := range []struct {
		cpu int
		ns  float64
	}{{1, 12000000}, {4, 3500000}, {8, 2000000}} {
		if es[i].CPU != want.cpu || es[i].Metrics["ns/op"] != want.ns {
			t.Errorf("entry %d = cpu %d, %v ns/op; want cpu %d, %v ns/op",
				i, es[i].CPU, es[i].Metrics["ns/op"], want.cpu, want.ns)
		}
	}
}

// With -count>1 the same benchmark name repeats at the same GOMAXPROCS;
// the report must aggregate (mean per metric), not keep whichever run came
// last.
func TestParseAggregatesRepeatedRuns(t *testing.T) {
	const repeated = `goos: linux
BenchmarkFoo-8    	     100	    1000 ns/op	     320 B/op	       4 allocs/op
BenchmarkFoo-8    	     300	    3000 ns/op	     280 B/op	       4 allocs/op
BenchmarkFoo-8    	     200	    2600 ns/op	     300 B/op	       4 allocs/op
BenchmarkBar-8    	      10	     500 ns/op
PASS
`
	r, err := Parse(repeated)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) != 2 {
		t.Fatalf("parsed %d entries, want 2: %v", len(r.Benchmarks), r.Benchmarks)
	}
	m := at(t, r, "BenchmarkFoo", 8)
	if m["ns/op"] != 2200 {
		t.Errorf("ns/op = %v, want mean 2200", m["ns/op"])
	}
	if m["B/op"] != 300 {
		t.Errorf("B/op = %v, want mean 300", m["B/op"])
	}
	if m["allocs/op"] != 4 {
		t.Errorf("allocs/op = %v, want 4", m["allocs/op"])
	}
	if m["iterations"] != 200 {
		t.Errorf("iterations = %v, want mean 200", m["iterations"])
	}
	if at(t, r, "BenchmarkBar", 8)["ns/op"] != 500 {
		t.Errorf("single-run benchmark affected by aggregation: %v", entries(r, "BenchmarkBar"))
	}
}

func TestSplitProcs(t *testing.T) {
	cases := map[string]struct {
		name string
		cpu  int
	}{
		"BenchmarkFoo-8":             {"BenchmarkFoo", 8},
		"BenchmarkFoo/bar-16":        {"BenchmarkFoo/bar", 16},
		"BenchmarkFoo/size1000":      {"BenchmarkFoo/size1000", 1}, // no dash at all
		"BenchmarkFoo/extraKB-x":     {"BenchmarkFoo/extraKB-x", 1},
		"BenchmarkFoo/size-100000":   {"BenchmarkFoo/size-100000", 1}, // dash-digits, but not a plausible GOMAXPROCS
		"BenchmarkFoo/size-100000-8": {"BenchmarkFoo/size-100000", 8},
	}
	for in, want := range cases {
		if name, cpu := splitProcs(in); name != want.name || cpu != want.cpu {
			t.Errorf("splitProcs(%q) = %q, %d; want %q, %d", in, name, cpu, want.name, want.cpu)
		}
	}
}

// The scaling guard: multi-core ns/op must stay within the ratio of the
// single-core baseline, and degenerate sweeps (nothing matched, no
// baseline, no multi-core run) fail rather than pass vacuously.
func TestGuard(t *testing.T) {
	const sweep = `goos: linux
BenchmarkScalesWell/N100k    	      10	  12000000 ns/op
BenchmarkScalesWell/N100k-4  	      30	   3500000 ns/op
BenchmarkScalesWell/N100k-8  	      50	   2000000 ns/op
BenchmarkRegresses/N100k     	      10	  10000000 ns/op
BenchmarkRegresses/N100k-8   	       8	  13000000 ns/op
BenchmarkFlat/N100k          	      10	  10000000 ns/op
BenchmarkFlat/N100k-8        	      10	  10500000 ns/op
BenchmarkNoBaseline-8        	      10	   1000 ns/op
PASS
`
	r, err := Parse(sweep)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		pattern string
		wantErr string // substring; "" = pass
	}{
		{"speedup passes", "BenchmarkScalesWell", ""},
		{"within tolerance passes", "BenchmarkFlat", ""},
		{"regression fails", "BenchmarkRegresses", "parallel-scaling guard failed"},
		{"regression named in error", "BenchmarkScalesWell|BenchmarkRegresses", "BenchmarkRegresses/N100k"},
		{"no match fails", "BenchmarkGhost", "matched no benchmarks"},
		{"missing baseline fails", "BenchmarkNoBaseline", "need a cpu=1 baseline"},
	}
	for _, tc := range cases {
		err := Guard(r, regexp.MustCompile(tc.pattern), 1.10)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}

	// The ratio knob is honoured: 1.3 tolerates the 1.3x regression's
	// sibling at 1.05x but a strict 1.0 rejects even BenchmarkFlat.
	if err := Guard(r, regexp.MustCompile("BenchmarkFlat"), 1.0); err == nil {
		t.Error("ratio 1.0 should reject a 1.05x entry")
	}
	if err := Guard(r, regexp.MustCompile("BenchmarkRegresses"), 1.5); err != nil {
		t.Errorf("ratio 1.5 should tolerate a 1.3x entry: %v", err)
	}
}
