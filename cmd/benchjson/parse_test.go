package main

import "testing"

const sample = `goos: linux
goarch: amd64
pkg: crosse
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBeliefImport/statements1000-8         	     100	    217979 ns/op	  225168 B/op	      59 allocs/op
BenchmarkManyUserMemory/sharedOverlays         	       1	 151487130 ns/op	90617784 B/op	  109326 allocs/op
BenchmarkConcurrentEnrich-4   	    3532	    627344 ns/op
BenchmarkCustomMetric-2    	      10	   100 ns/op	        42.5 widgets/op
BenchmarkBroken 	--- FAIL
PASS
ok  	crosse	1.234s
`

// at returns the entry for one GOMAXPROCS setting of one benchmark.
func at(t *testing.T, r Report, name string, cpu int) Metrics {
	t.Helper()
	for _, e := range r[name] {
		if e.CPU == cpu {
			return e.Metrics
		}
	}
	t.Fatalf("%s has no cpu=%d entry: %v", name, cpu, r[name])
	return nil
}

func TestParse(t *testing.T) {
	r, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 4 {
		t.Fatalf("parsed %d entries, want 4: %v", len(r), r)
	}

	m := at(t, r, "BenchmarkBeliefImport/statements1000", 8)
	if m["ns/op"] != 217979 || m["B/op"] != 225168 || m["allocs/op"] != 59 || m["iterations"] != 100 {
		t.Errorf("BeliefImport metrics = %v", m)
	}

	// No suffix means the run was at GOMAXPROCS=1.
	if m := at(t, r, "BenchmarkManyUserMemory/sharedOverlays", 1); m["B/op"] != 90617784 {
		t.Errorf("sharedOverlays metrics = %v", m)
	}
	if m := at(t, r, "BenchmarkConcurrentEnrich", 4); m["ns/op"] != 627344 {
		t.Errorf("ConcurrentEnrich metrics = %v", m)
	}
	if m := at(t, r, "BenchmarkCustomMetric", 2); m["widgets/op"] != 42.5 {
		t.Errorf("custom metric = %v", m)
	}
	if _, ok := r["BenchmarkBroken"]; ok {
		t.Error("failed benchmark line should be skipped")
	}
}

// A -cpu sweep reports the same name at several GOMAXPROCS settings: each
// must become its own entry (not a mean across settings), ordered by
// rising CPU so scaling curves read straight off the artifact.
func TestParseCPUSweep(t *testing.T) {
	const sweep = `goos: linux
BenchmarkSQLJoin/Hash100k-8    	      50	   2000000 ns/op
BenchmarkSQLJoin/Hash100k-4    	      30	   3500000 ns/op
BenchmarkSQLJoin/Hash100k    	      10	  12000000 ns/op
PASS
`
	r, err := Parse(sweep)
	if err != nil {
		t.Fatal(err)
	}
	es := r["BenchmarkSQLJoin/Hash100k"]
	if len(es) != 3 {
		t.Fatalf("sweep produced %d entries, want 3: %v", len(es), es)
	}
	for i, want := range []struct {
		cpu int
		ns  float64
	}{{1, 12000000}, {4, 3500000}, {8, 2000000}} {
		if es[i].CPU != want.cpu || es[i].Metrics["ns/op"] != want.ns {
			t.Errorf("entry %d = cpu %d, %v ns/op; want cpu %d, %v ns/op",
				i, es[i].CPU, es[i].Metrics["ns/op"], want.cpu, want.ns)
		}
	}
}

// With -count>1 the same benchmark name repeats at the same GOMAXPROCS;
// the report must aggregate (mean per metric), not keep whichever run came
// last.
func TestParseAggregatesRepeatedRuns(t *testing.T) {
	const repeated = `goos: linux
BenchmarkFoo-8    	     100	    1000 ns/op	     320 B/op	       4 allocs/op
BenchmarkFoo-8    	     300	    3000 ns/op	     280 B/op	       4 allocs/op
BenchmarkFoo-8    	     200	    2600 ns/op	     300 B/op	       4 allocs/op
BenchmarkBar-8    	      10	     500 ns/op
PASS
`
	r, err := Parse(repeated)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 {
		t.Fatalf("parsed %d entries, want 2: %v", len(r), r)
	}
	m := at(t, r, "BenchmarkFoo", 8)
	if m["ns/op"] != 2200 {
		t.Errorf("ns/op = %v, want mean 2200", m["ns/op"])
	}
	if m["B/op"] != 300 {
		t.Errorf("B/op = %v, want mean 300", m["B/op"])
	}
	if m["allocs/op"] != 4 {
		t.Errorf("allocs/op = %v, want 4", m["allocs/op"])
	}
	if m["iterations"] != 200 {
		t.Errorf("iterations = %v, want mean 200", m["iterations"])
	}
	if at(t, r, "BenchmarkBar", 8)["ns/op"] != 500 {
		t.Errorf("single-run benchmark affected by aggregation: %v", r["BenchmarkBar"])
	}
}

func TestSplitProcs(t *testing.T) {
	cases := map[string]struct {
		name string
		cpu  int
	}{
		"BenchmarkFoo-8":             {"BenchmarkFoo", 8},
		"BenchmarkFoo/bar-16":        {"BenchmarkFoo/bar", 16},
		"BenchmarkFoo/size1000":      {"BenchmarkFoo/size1000", 1}, // no dash at all
		"BenchmarkFoo/extraKB-x":     {"BenchmarkFoo/extraKB-x", 1},
		"BenchmarkFoo/size-100000":   {"BenchmarkFoo/size-100000", 1}, // dash-digits, but not a plausible GOMAXPROCS
		"BenchmarkFoo/size-100000-8": {"BenchmarkFoo/size-100000", 8},
	}
	for in, want := range cases {
		if name, cpu := splitProcs(in); name != want.name || cpu != want.cpu {
			t.Errorf("splitProcs(%q) = %q, %d; want %q, %d", in, name, cpu, want.name, want.cpu)
		}
	}
}
