package main

import "testing"

const sample = `goos: linux
goarch: amd64
pkg: crosse
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBeliefImport/statements1000-8         	     100	    217979 ns/op	  225168 B/op	      59 allocs/op
BenchmarkManyUserMemory/sharedOverlays         	       1	 151487130 ns/op	90617784 B/op	  109326 allocs/op
BenchmarkConcurrentEnrich-4   	    3532	    627344 ns/op
BenchmarkCustomMetric-2    	      10	   100 ns/op	        42.5 widgets/op
BenchmarkBroken 	--- FAIL
PASS
ok  	crosse	1.234s
`

func TestParse(t *testing.T) {
	r, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 4 {
		t.Fatalf("parsed %d entries, want 4: %v", len(r), r)
	}

	m, ok := r["BenchmarkBeliefImport/statements1000"]
	if !ok {
		t.Fatal("missing BeliefImport entry (GOMAXPROCS suffix should be stripped)")
	}
	if m["ns/op"] != 217979 || m["B/op"] != 225168 || m["allocs/op"] != 59 || m["iterations"] != 100 {
		t.Errorf("BeliefImport metrics = %v", m)
	}

	if m := r["BenchmarkManyUserMemory/sharedOverlays"]; m["B/op"] != 90617784 {
		t.Errorf("sharedOverlays metrics = %v", m)
	}
	if m := r["BenchmarkConcurrentEnrich"]; m["ns/op"] != 627344 {
		t.Errorf("ConcurrentEnrich metrics = %v", m)
	}
	if m := r["BenchmarkCustomMetric"]; m["widgets/op"] != 42.5 {
		t.Errorf("custom metric = %v", m)
	}
	if _, ok := r["BenchmarkBroken"]; ok {
		t.Error("failed benchmark line should be skipped")
	}
}

// With -count>1 the same benchmark name repeats; the report must aggregate
// (mean per metric), not keep whichever run came last.
func TestParseAggregatesRepeatedRuns(t *testing.T) {
	const repeated = `goos: linux
BenchmarkFoo-8    	     100	    1000 ns/op	     320 B/op	       4 allocs/op
BenchmarkFoo-8    	     300	    3000 ns/op	     280 B/op	       4 allocs/op
BenchmarkFoo-8    	     200	    2600 ns/op	     300 B/op	       4 allocs/op
BenchmarkBar-8    	      10	     500 ns/op
PASS
`
	r, err := Parse(repeated)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 {
		t.Fatalf("parsed %d entries, want 2: %v", len(r), r)
	}
	m := r["BenchmarkFoo"]
	if m["ns/op"] != 2200 {
		t.Errorf("ns/op = %v, want mean 2200", m["ns/op"])
	}
	if m["B/op"] != 300 {
		t.Errorf("B/op = %v, want mean 300", m["B/op"])
	}
	if m["allocs/op"] != 4 {
		t.Errorf("allocs/op = %v, want 4", m["allocs/op"])
	}
	if m["iterations"] != 200 {
		t.Errorf("iterations = %v, want mean 200", m["iterations"])
	}
	if r["BenchmarkBar"]["ns/op"] != 500 {
		t.Errorf("single-run benchmark affected by aggregation: %v", r["BenchmarkBar"])
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":             "BenchmarkFoo",
		"BenchmarkFoo/bar-16":        "BenchmarkFoo/bar",
		"BenchmarkFoo/size1000":      "BenchmarkFoo/size1000", // no dash at all
		"BenchmarkFoo/extraKB-x":     "BenchmarkFoo/extraKB-x",
		"BenchmarkFoo/size-100000":   "BenchmarkFoo/size-100000", // dash-digits, but not a plausible GOMAXPROCS
		"BenchmarkFoo/size-100000-8": "BenchmarkFoo/size-100000",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
