// Command snapcheck proves cold-start recovery end to end: it builds a
// populated CroSSE platform (synthetic databank + multi-user semantic
// platform), runs a battery of SESQL/SPARQL/pattern-count probes, and
// either saves the platform image plus the probe results (-mode save) or
// restores the image in a *fresh process* and diffs the same probes against
// the recorded results (-mode verify). CI runs save and verify as separate
// processes on every PR, so a snapshot-codec regression that loses state
// cannot land silently.
//
// Usage:
//
//	snapcheck -mode save   -image platform.img -results expected.json
//	snapcheck -mode verify -image platform.img -results expected.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"sort"

	"crosse/internal/core"
	"crosse/internal/dataset"
	"crosse/internal/engine"
	"crosse/internal/kb"
	"crosse/internal/rdf"
	"crosse/internal/sparql"
)

// probeResults is everything verify compares: query outputs and the
// structural counts that pin view/arena state.
type probeResults struct {
	Users      []string            `json:"users"`
	ArenaLen   int                 `json:"arena_len"`
	DictLen    int                 `json:"dict_len"`
	ViewSizes  map[string]int      `json:"view_sizes"`
	SESQL      map[string][]string `json:"sesql"`  // query → sorted result rows
	SPARQL     map[string][]string `json:"sparql"` // user → sorted bindings of the probe query
	Counts     map[string][]int    `json:"counts"` // user → pattern-count battery
	Statements []string            `json:"statements"`
}

var sesqlProbes = map[string]string{
	"schema_extension":      "SELECT elem_name, landfill_name\nFROM elem_contained\nENRICH\nSCHEMAEXTENSION( elem_name, dangerLevel)",
	"bool_schema_extension": "SELECT elem_name\nFROM elem_contained\nENRICH\nBOOLSCHEMAEXTENSION( elem_name, isA, HazardousWaste)",
	"plain_sql":             "SELECT name, city FROM landfill WHERE name < 'landfill_0040'",
}

const sparqlProbe = `SELECT ?s ?p ?o WHERE { ?s ?p ?o } ORDER BY ?s ?p ?o`

// build synthesises the deterministic scenario both modes share.
func build() (*core.Enricher, error) {
	db := engine.Open()
	cfg := dataset.DefaultConfig()
	cfg.Landfills = 80
	if err := dataset.Populate(db, cfg); err != nil {
		return nil, err
	}
	p := kb.NewPlatform()
	for _, u := range []string{"alice", "bob"} {
		if err := p.RegisterUser(u); err != nil {
			return nil, err
		}
	}
	ocfg := dataset.DefaultOntology()
	ocfg.ExtraTriples = 2000
	if _, err := dataset.PopulateOntology(p, "alice", ocfg); err != nil {
		return nil, err
	}
	if err := dataset.RegisterDangerQuery(p); err != nil {
		return nil, err
	}
	// bob believes part of alice's corpus and owns statements of his own,
	// so the image carries shared triples, refcounts and two distinct views.
	i := 0
	if _, err := p.ImportFrom("bob", "alice", func(*kb.Statement) bool {
		i++
		return i%3 == 0
	}); err != nil {
		return nil, err
	}
	if _, err := p.Insert("bob", rdf.Triple{
		S: dataset.IRI("element_001"), P: dataset.IRI("reviewedBy"), O: rdf.NewLiteral("bob"),
	}, kb.WithReference(kb.Reference{Title: "field notes", Author: "bob"})); err != nil {
		return nil, err
	}
	if err := p.DeclareProperty("bob", dataset.IRI("reviewedBy").Value); err != nil {
		return nil, err
	}
	return core.New(db, p, nil), nil
}

// probe runs the full battery against an enricher.
func probe(e *core.Enricher) (*probeResults, error) {
	p := e.Platform
	res := &probeResults{
		Users:     p.Users(),
		ArenaLen:  p.Shared().Len(),
		DictLen:   p.Shared().DictLen(),
		ViewSizes: map[string]int{},
		SESQL:     map[string][]string{},
		SPARQL:    map[string][]string{},
		Counts:    map[string][]int{},
	}
	for _, st := range p.Explore(nil) {
		res.Statements = append(res.Statements,
			fmt.Sprintf("%s|%s|%s|%v", st.ID, st.Owner, st.Triple, st.Believers()))
	}
	for name, q := range sesqlProbes {
		r, err := e.Query("alice", q)
		if err != nil {
			return nil, fmt.Errorf("SESQL probe %s: %w", name, err)
		}
		var rows []string
		for _, row := range r.Rows {
			line := ""
			for i, v := range row {
				if i > 0 {
					line += "|"
				}
				line += v.String()
			}
			rows = append(rows, line)
		}
		sort.Strings(rows)
		res.SESQL[name] = rows
	}
	for _, u := range p.Users() {
		res.ViewSizes[u] = p.ViewSize(u)
		view, err := p.View(u)
		if err != nil {
			return nil, err
		}
		r, err := sparql.Eval(view, sparqlProbe)
		if err != nil {
			return nil, fmt.Errorf("SPARQL probe for %s: %w", u, err)
		}
		var rows []string
		for _, b := range r.Bindings {
			rows = append(rows, fmt.Sprintf("%s|%s|%s", b["s"], b["p"], b["o"]))
		}
		res.SPARQL[u] = rows
		// Pattern-count battery over the vocabulary the ontology uses.
		for _, pat := range []rdf.Pattern{
			{},
			{P: dataset.IRI("dangerLevel")},
			{P: dataset.IRI("isA")},
			{P: dataset.IRI("isA"), O: dataset.IRI("HazardousWaste")},
			{S: dataset.IRI("element_001")},
			{O: rdf.NewLiteral("high")},
		} {
			res.Counts[u] = append(res.Counts[u], view.Count(pat))
		}
	}
	return res, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snapcheck:", err)
	os.Exit(1)
}

func main() {
	mode := flag.String("mode", "", "save | verify")
	image := flag.String("image", "platform.img", "platform image file")
	results := flag.String("results", "expected.json", "probe results file")
	flag.Parse()

	switch *mode {
	case "save":
		e, err := build()
		if err != nil {
			fatal(err)
		}
		want, err := probe(e)
		if err != nil {
			fatal(err)
		}
		size, err := core.SaveImageFile(*image, e.DB, e.Platform)
		if err != nil {
			fatal(err)
		}
		raw, err := json.MarshalIndent(want, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*results, append(raw, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("snapcheck: saved %s (%d bytes) and %s (%d probes over %d statements)\n",
			*image, size, *results, len(want.SESQL)+len(want.SPARQL), len(want.Statements))

	case "verify":
		raw, err := os.ReadFile(*results)
		if err != nil {
			fatal(err)
		}
		var want probeResults
		if err := json.Unmarshal(raw, &want); err != nil {
			fatal(err)
		}
		db, p, err := core.LoadImageFile(*image)
		if err != nil {
			fatal(err)
		}
		got, err := probe(core.New(db, p, nil))
		if err != nil {
			fatal(err)
		}
		if !reflect.DeepEqual(&want, got) {
			gotJSON, _ := json.MarshalIndent(got, "", "  ")
			fmt.Fprintf(os.Stderr, "snapcheck: restored platform diverges from original\n--- expected\n%s\n--- restored\n%s\n", raw, gotJSON)
			os.Exit(1)
		}
		fmt.Printf("snapcheck: restore verified (%d users, %d triples, %d statements, all probes equal)\n",
			len(got.Users), got.ArenaLen, len(got.Statements))

	default:
		fatal(fmt.Errorf("unknown -mode %q (want save or verify)", *mode))
	}
}
